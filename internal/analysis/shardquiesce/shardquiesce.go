// Package shardquiesce enforces the join-shard parallelism contract of
// PROTOCOL.md: operator, spill, and adaptation-mode state owned by a
// component with a shard-worker pool may only be touched from the
// serial handler goroutine after the pool has been quiesced, or by a
// shard worker inside its own partition scope (its *join.Shard).
//
// The analyzer activates in packages that declare a "barrier struct":
// a struct with a field whose type has a quiesce method (the engine's
// shard pool). Two rules are then checked:
//
//  1. Handler barrier: every protocol handler (a method of the barrier
//     struct that type-switches a parameter over proto message types)
//     must call the quiesce barrier before entering the switch. Data is
//     dispatched to the pool, so the usual shape is
//     `if _, isData := msg.(proto.Data); !isData { quiesce }` — the
//     analyzer only requires that a quiesce call precede the switch.
//     This is the PR-5 spill mode-clobber shape: a handler that flips
//     core.Mode while shard workers are still processing corrupts the
//     mode restore.
//
//  2. Goroutine scope: code launched by a `go` statement (closure
//     bodies and same-package callees, one level deep) must not store
//     to or invoke methods on values of the guarded packages
//     (repro/internal/join, repro/internal/spill, repro/internal/core)
//     — except a worker's own *join.Shard, which it owns exclusively.
//     Local aliases (`op := e.op; go func() { op.Purge(...) }()`) are
//     caught by the values' types, not their spelling.
//
// Deliberate exceptions carry a //distqlint:allow shardquiesce waiver
// with a rationale.
package shardquiesce

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// guardedPkgs are the packages whose state the quiesce barrier guards.
var guardedPkgs = map[string]bool{
	"repro/internal/join":  true,
	"repro/internal/spill": true,
	"repro/internal/core":  true,
}

// ProtoPath identifies protocol handlers by their switch case types.
const ProtoPath = "repro/internal/proto"

// Analyzer implements the shard-quiesce discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "shardquiesce",
	Doc:  "operator/spill/mode state may only be touched by the quiesced handler or a shard worker's own shard",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	barriers := barrierStructs(pass)
	if len(barriers) == 0 {
		return nil // no shard pool here: out of scope
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvNamed(pass, fd) != nil && barriers[recvNamed(pass, fd)] {
				checkHandler(pass, fd)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoroutine(pass, g)
				}
				return true
			})
		}
	}
	return nil
}

// barrierStructs finds the named struct types having a field whose type
// provides a quiesce method — the owners of a shard pool.
func barrierStructs(pass *analysis.Pass) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	if pass.Pkg == nil {
		return out
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if hasQuiesceMethod(st.Field(i).Type()) {
				out[named] = true
				break
			}
		}
	}
	return out
}

// hasQuiesceMethod reports whether t (possibly behind a pointer) has a
// method whose name starts with "quiesce" — the pool barrier itself.
// A mere protocol handler for the Quiesce message (onQuiesce) does not
// make its owner a shard pool.
func hasQuiesceMethod(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if strings.HasPrefix(strings.ToLower(named.Method(i).Name()), "quiesce") {
			return true
		}
	}
	return false
}

// recvNamed resolves fd's receiver to its named struct type, or nil.
func recvNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkHandler flags protocol handlers that enter their message type
// switch without first crossing the quiesce barrier.
func checkHandler(pass *analysis.Pass, fd *ast.FuncDecl) {
	for i, stmt := range fd.Body.List {
		ts, ok := stmt.(*ast.TypeSwitchStmt)
		if !ok || !switchesProto(pass, ts) {
			continue
		}
		if !quiesceBefore(fd.Body.List[:i]) {
			pass.Reportf(ts.Pos(), "protocol handler enters its message switch without quiescing the shard pool: non-Data handlers must cross the barrier before touching operator state (PROTOCOL.md join-shard parallelism)")
		}
	}
}

// switchesProto reports whether ts has at least one case over a type
// declared in the proto package — the signature of a protocol handler.
func switchesProto(pass *analysis.Pass, ts *ast.TypeSwitchStmt) bool {
	for _, c := range ts.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.Info.Types[expr]
			if !ok {
				continue
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == ProtoPath {
					return true
				}
			}
		}
	}
	return false
}

// quiesceBefore reports whether any of stmts (including nested blocks
// and conditionals — the Data fast path is the `!isData` guard) calls a
// method whose name contains "quiesce".
func quiesceBefore(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				strings.Contains(strings.ToLower(sel.Sel.Name), "quiesce") {
				found = true
			}
			return true
		})
	}
	return found
}

// checkGoroutine scans the body launched by g for guarded-state access.
func checkGoroutine(pass *analysis.Pass, g *ast.GoStmt) {
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		scanBody(pass, fl.Body)
		return
	}
	// go p.run(i, w): inline the same-package callee one level deep.
	fn := dataflow.CalleeFunc(pass.Info, g.Call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Path {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && obj == fn {
				scanBody(pass, fd.Body)
				return
			}
		}
	}
}

// scanBody reports stores to and method calls on guarded values.
func scanBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if expr := guardedIn(pass, lhs); expr != nil {
					pass.Reportf(lhs.Pos(), "goroutine mutates %s state without the quiesce barrier: only the quiesced handler or a shard worker's own shard may touch it", typeLabel(pass, expr))
					break
				}
			}
		case *ast.IncDecStmt:
			if expr := guardedIn(pass, st.X); expr != nil {
				pass.Reportf(st.Pos(), "goroutine mutates %s state without the quiesce barrier: only the quiesced handler or a shard worker's own shard may touch it", typeLabel(pass, expr))
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if expr := guardedIn(pass, sel.X); expr != nil {
				pass.Reportf(st.Pos(), "goroutine calls %s.%s without the quiesce barrier: only the quiesced handler or a shard worker's own shard may touch operator state", typeLabel(pass, expr), sel.Sel.Name)
			}
		}
		return true
	})
}

// guardedIn returns the innermost sub-expression of expr whose type is
// a guarded-package type (join/spill/core), or nil. A chain passing
// through *join.Shard is exempt: that is a worker's own partition
// scope.
func guardedIn(pass *analysis.Pass, expr ast.Expr) ast.Expr {
	var hit ast.Expr
	shard := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
		case *ast.SelectorExpr:
			classify(pass, x, &hit, &shard)
			walk(x.X)
		case *ast.Ident:
			classify(pass, x, &hit, &shard)
		}
	}
	walk(expr)
	if shard {
		return nil
	}
	return hit
}

// classify records whether e's type is guarded or the exempt Shard.
func classify(pass *analysis.Pass, e ast.Expr, hit *ast.Expr, shard *bool) {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !guardedPkgs[obj.Pkg().Path()] {
		return
	}
	if obj.Name() == "Shard" && obj.Pkg().Path() == "repro/internal/join" {
		*shard = true
		return
	}
	if *hit == nil {
		*hit = e
	}
}

// typeLabel renders the guarded expression's type for diagnostics.
func typeLabel(pass *analysis.Pass, expr ast.Expr) string {
	tv, ok := pass.Info.Types[expr]
	if !ok {
		return "guarded"
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
