package shardquiesce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/shardquiesce"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", shardquiesce.Analyzer,
		"repro/internal/join",   // no barrier struct: out of scope
		"repro/internal/engine", // barrier shapes incl. the PR-5 mode clobber
	)
}
