// Package engine reproduces the pre-linter wall-clock leak this
// analyzer exists to catch: the real engine's spill worker throttled
// with a 250ms real sleep inside a virtual-time experiment
// (engine.go:207 before the fix).
package engine

import "time"

// spillThrottle mirrors the old forced-spill pacing loop.
func spillThrottle(overflow func() bool) {
	for overflow() {
		time.Sleep(250 * time.Millisecond) // want `wall clock: time\.Sleep outside the vclock allowlist`
	}
}

// Durations, conversions and constants stay free: only clock reads and
// waits are wall-clock surface.
var statsInterval = 5 * time.Second

func stamp(ns int64) time.Time { return time.Unix(0, ns) }

type fakeClock struct{}

func (fakeClock) Sleep(d time.Duration) {}

// shadowed calls Sleep on a local named time: not the time package.
func shadowed() {
	time := fakeClock{}
	time.Sleep(time2())
}

func time2() time.Duration { return 0 }

type clock interface{ Now() time.Time }

// shardWorker mirrors the parallel join's per-shard goroutine: worker
// loops stamp their spans through the engine's injected clock, and the
// discipline follows the code into the goroutine — a wall-clock read
// inside the worker is as much a leak as one on the handler.
func shardWorker(c clock, work chan int) {
	go func() {
		for range work {
			_ = c.Now()         // conforming: the injected clock is the doorway
			_ = time.Now()      // want `wall clock: time\.Now outside the vclock allowlist`
			time.Sleep(time2()) // want `wall clock: time\.Sleep outside the vclock allowlist`
		}
	}()
}
