// Package dotimport hides the time package behind a dot-import, which
// the analyzer rejects outright: unqualified Now()/Sleep() calls cannot
// be audited for wall-clock use.
package dotimport

import . "time" // want `dot-import of time hides wall-clock calls from review`
