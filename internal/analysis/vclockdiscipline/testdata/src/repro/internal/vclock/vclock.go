// Package vclock is allowlisted: it is the sanctioned wall-clock
// doorway, so its direct time calls produce no diagnostics.
package vclock

import "time"

func WallNow() time.Time                  { return time.Now() }
func WallSleep(d time.Duration)           { time.Sleep(d) }
func WallSince(t time.Time) time.Duration { return time.Since(t) }
