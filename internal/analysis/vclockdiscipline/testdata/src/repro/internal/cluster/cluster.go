// Package cluster reproduces the harness's pre-linter shutdown leak: a
// real 20ms sleep "waiting" for handlers to drain (cluster.go:358
// before the Done-channel stop fence replaced it).
package cluster

import "time"

// stopAll mirrors the old shutdown: stop every node, then hope 20ms of
// wall time is enough for the serial handlers to process the Stop.
func stopAll(stops []func()) {
	for _, stop := range stops {
		stop()
	}
	time.Sleep(20 * time.Millisecond) // want `wall clock: time\.Sleep outside the vclock allowlist`
}

// deadline mixes a read and a wait on one line.
func deadline() bool {
	return time.Now().After(time.Unix(0, 0)) // want `wall clock: time\.Now outside the vclock allowlist`
}

// watchdog carries an explicit waiver, so it is not reported.
func watchdog() <-chan time.Time {
	return time.After(5 * time.Second) //distqlint:allow vclockdiscipline: harness watchdog, wall time intended
}
