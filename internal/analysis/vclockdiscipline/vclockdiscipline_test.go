package vclockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/vclockdiscipline"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", vclockdiscipline.Analyzer,
		"repro/internal/engine",    // the fixed engine.go:207 leak, reproduced
		"repro/internal/cluster",   // the fixed cluster.go:358 leak, reproduced
		"repro/internal/vclock",    // allowlisted: no findings
		"repro/internal/dotimport", // dot-import of time
	)
}
