// Package vclockdiscipline forbids direct wall-clock reads and waits so
// that all simulation timing flows through vclock.Clock. The paper's
// experiments replay with a compressed virtual clock; one stray
// time.Sleep makes a 40-virtual-minute run take real minutes and makes
// Manual-clock unit tests nondeterministic.
//
// Forbidden outside the allowlist: time.Now, time.Sleep, time.After,
// time.AfterFunc, time.Since, time.Until, time.Tick, time.NewTicker,
// time.NewTimer. Types, constants and conversions (time.Duration,
// time.Millisecond, ...) remain free.
//
// Allowlisted packages, which are the sanctioned wall-clock doorways:
//
//	repro/internal/vclock    — implements virtual time and the Wall* helpers
//	repro/internal/obs       — wall-stamps on spans alongside virtual stamps
//	repro/internal/transport — wall-clock send-latency probes
//	repro/internal/monitor   — human-facing uptime on /stats
//
// Anything else uses vclock.Clock for simulation timing and the
// vclock.Wall* helpers for watchdogs, demo pacing and log tickers, or
// carries an explicit //distqlint:allow vclockdiscipline waiver.
package vclockdiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// forbidden lists the time package's clock-reading and waiting functions.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowlist names the packages permitted to touch the wall clock.
var allowlist = map[string]bool{
	"repro/internal/vclock":    true,
	"repro/internal/obs":       true,
	"repro/internal/transport": true,
	"repro/internal/monitor":   true,
}

// Analyzer implements the virtual-time discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "vclockdiscipline",
	Doc:  "forbid wall-clock time.Now/Sleep/After/... outside the vclock allowlist",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if allowlist[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		timeName, imported := analysis.ImportName(file, "time")
		if !imported || timeName == "_" {
			continue
		}
		if timeName == "." {
			ast.Inspect(file, func(n ast.Node) bool {
				if imp, ok := n.(*ast.ImportSpec); ok && imp.Name != nil && imp.Name.Name == "." {
					pass.Reportf(imp.Pos(), "dot-import of time hides wall-clock calls from review; import it qualified")
					return false
				}
				return true
			})
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !forbidden[sel.Sel.Name] {
				return true
			}
			// Prefer type info (immune to shadowing); fall back to the
			// import table when resolution failed.
			if obj := pass.Info.Uses[x]; obj != nil {
				pn, ok := obj.(*types.PkgName)
				if !ok || pn.Imported().Path() != "time" {
					return true
				}
			} else if x.Name != timeName {
				return true
			}
			pass.Reportf(sel.Pos(), "wall clock: time.%s outside the vclock allowlist; use vclock.Clock for simulation timing or vclock.Wall* for watchdogs and demo pacing", sel.Sel.Name)
			return true
		})
	}
	return nil
}
