package dataflow

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// A Summarizer computes and caches per-function Summaries for
// in-module callees, resolving their declarations through the shared
// Loader. External (stubbed) callees and recursion cycles yield the
// optimistic all-false summary, matching the framework's best-effort
// stance.
type Summarizer struct {
	loader *analysis.Loader
	cache  map[*types.Func]*Summary
	active map[*types.Func]bool
}

// NewSummarizer returns a Summarizer resolving declarations through l.
func NewSummarizer(l *analysis.Loader) *Summarizer {
	return &Summarizer{
		loader: l,
		cache:  make(map[*types.Func]*Summary),
		active: make(map[*types.Func]bool),
	}
}

// ForCall resolves call's callee and returns its Summary, or nil when
// the callee is unknown, external, or body-less (treat optimistically).
// info must be the types.Info of the package containing the call.
func (s *Summarizer) ForCall(info *types.Info, call *ast.CallExpr) *Summary {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	return s.ForFunc(fn)
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (function or method), or nil for builtins, conversions, function
// values, and unresolved callees.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// ForFunc returns fn's Summary, computing and caching it on first use.
func (s *Summarizer) ForFunc(fn *types.Func) *Summary {
	if sum, ok := s.cache[fn]; ok {
		return sum
	}
	if s.active[fn] {
		return s.optimistic(fn) // recursion: assume no retention
	}
	s.active[fn] = true
	defer delete(s.active, fn)
	sum := s.compute(fn)
	s.cache[fn] = sum
	return sum
}

// optimistic builds the all-false summary sized to fn's operands.
func (s *Summarizer) optimistic(fn *types.Func) *Summary {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return &Summary{Retains: make([]bool, n), Flows: make([]bool, n)}
}

// compute summarizes fn by running the escape analysis over its body
// with every operand (receiver + params) as a taint source.
func (s *Summarizer) compute(fn *types.Func) *Summary {
	if fn.Pkg() == nil {
		return nil
	}
	pkg, err := s.loader.Load(fn.Pkg().Path())
	if err != nil {
		return nil // external or unloadable: optimistic
	}
	decl, _ := FindDecl(pkg, fn)
	if decl == nil || decl.Body == nil {
		return nil
	}

	// Label each operand var op0..opN in summary order.
	labelOf := make(map[*types.Var]string)
	var order []*types.Var
	addVar := func(v *types.Var) {
		if v == nil {
			return
		}
		labelOf[v] = fmt.Sprintf("op%d", len(order))
		order = append(order, v)
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	if sig.Recv() != nil {
		addVar(sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		addVar(sig.Params().At(i))
	}
	if len(order) == 0 {
		return &Summary{}
	}

	g := BuildCFG(decl.Body)
	r := ReachingDefs(g, pkg.Info, decl.Type, decl.Recv)
	escapes := Escapes(r, TaintConfig{
		Info: pkg.Info,
		IsSource: func(expr ast.Expr) (string, bool) {
			id, ok := expr.(*ast.Ident)
			if !ok {
				return "", false
			}
			v, ok := pkg.Info.Uses[id].(*types.Var)
			if !ok {
				if v, ok = pkg.Info.Defs[id].(*types.Var); !ok {
					return "", false
				}
			}
			label, ok := labelOf[v]
			return label, ok
		},
		Summary: func(call *ast.CallExpr) *Summary {
			return s.ForCall(pkg.Info, call)
		},
	})

	sum := &Summary{Retains: make([]bool, len(order)), Flows: make([]bool, len(order))}
	idx := make(map[string]int, len(order))
	for i := range order {
		idx[fmt.Sprintf("op%d", i)] = i
	}
	for _, esc := range escapes {
		for _, label := range esc.Sources {
			i, ok := idx[label]
			if !ok {
				continue
			}
			if esc.Kind == EscReturn {
				sum.Flows[i] = true
			} else {
				sum.Retains[i] = true
			}
		}
	}
	return sum
}

// FindDecl locates fn's declaration in pkg, returning the decl and its
// file. Object identity holds because one Loader (one FileSet, one
// type-checker universe) serves the whole lint run.
func FindDecl(pkg *analysis.Package, fn *types.Func) (*ast.FuncDecl, *ast.File) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && obj == fn {
				return fd, f
			}
		}
	}
	return nil, nil
}

// Analyze is the common front half of a flow-aware analyzer: build the
// CFG and reaching-definitions solution for one declared function body.
// Returns nil for body-less declarations.
func Analyze(info *types.Info, decl *ast.FuncDecl) *Reach {
	if decl.Body == nil {
		return nil
	}
	return AnalyzeFunc(info, decl.Type, decl.Recv, decl.Body)
}

// AnalyzeFunc is Analyze for an arbitrary function shape — use it to
// analyze a FuncLit's body (recv nil) as its own function.
func AnalyzeFunc(info *types.Info, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) *Reach {
	g := BuildCFG(body)
	return ReachingDefs(g, info, ftype, recv)
}
