// Package dataflow is the shared intra-procedural analysis engine under
// the repo's flow-aware analyzers (aliasretain, shardquiesce,
// tracepropagation, stopfence). It provides three layers, all on the
// stdlib-only tolerant loader of internal/analysis:
//
//   - a statement-level control-flow graph over one function body (CFG);
//   - classic reaching definitions over that CFG (Reach), so analyzers
//     can follow a value through local aliases (`op := e.op; op.X()`);
//   - a provenance-tracking taint/escape pass (Escapes) with per-callee
//     summaries for in-module functions (Summarizer), so "does this
//     scratch buffer outlive the call" survives helper indirection.
//
// Like the rest of internal/analysis, the engine treats type information
// as best-effort: external imports are stubs, so unknown callees are
// handled optimistically (no taint flow, no retention) and in-module
// callees contribute real summaries.
package dataflow

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of CFG elements. Elements are
// statements, plus the expressions and headers evaluated for control
// flow (if/for conditions, range and type-switch headers), in execution
// order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// A Graph is the CFG of one function body. Exit is the single synthetic
// exit block (returns and the body's fallthrough both reach it).
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// BuildCFG constructs the control-flow graph of body. Function literals
// inside body are treated as opaque values: their bodies are not part of
// this graph (analyze them separately).
func BuildCFG(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	last := b.stmts(g.Entry, body.List)
	b.edge(last, g.Exit)
	return g
}

type loopCtx struct {
	brk, cont *Block
}

type cfgBuilder struct {
	g     *Graph
	loops []loopCtx
	// brks is the innermost break target for switch/select bodies.
	brks []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge connects from to to; a nil from means the predecessor path was
// terminated (return/branch) and there is nothing to connect.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmts lays out a statement list starting in cur and returns the block
// that falls through the end (nil if the path always terminates).
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	if cur == nil {
		// Unreachable code after return/branch: park it in a detached
		// block so its defs still exist (harmless over-approximation).
		cur = b.newBlock()
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, st.List)
	case *ast.LabeledStmt:
		return b.stmt(cur, st.Stmt)
	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, st)
		b.edge(cur, b.g.Exit)
		return nil
	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, st)
		switch st.Tok {
		case token.BREAK:
			if n := len(b.brks); n > 0 {
				b.edge(cur, b.brks[n-1])
			} else {
				b.edge(cur, b.g.Exit)
			}
			return nil
		case token.CONTINUE:
			if n := len(b.loops); n > 0 {
				b.edge(cur, b.loops[n-1].cont)
			} else {
				b.edge(cur, b.g.Exit)
			}
			return nil
		case token.GOTO:
			// Unsupported precisely; terminate the path (the target's
			// defs are reached through its other predecessors).
			b.edge(cur, b.g.Exit)
			return nil
		}
		return cur // fallthrough: treated as falling out of the case
	case *ast.IfStmt:
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		cur.Nodes = append(cur.Nodes, &exprNode{st.Cond})
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmts(thenB, st.Body.List)
		join := b.newBlock()
		b.edge(thenEnd, join)
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(elseB, st.Else)
			b.edge(elseEnd, join)
		} else {
			b.edge(cur, join)
		}
		return join
	case *ast.ForStmt:
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, &exprNode{st.Cond})
		}
		join := b.newBlock()
		post := b.newBlock()
		if st.Post != nil {
			post.Nodes = append(post.Nodes, st.Post)
		}
		b.edge(post, head)
		body := b.newBlock()
		b.edge(head, body)
		if st.Cond != nil {
			b.edge(head, join) // condition false
		}
		b.loops = append(b.loops, loopCtx{brk: join, cont: post})
		b.brks = append(b.brks, join)
		bodyEnd := b.stmts(body, st.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.brks = b.brks[:len(b.brks)-1]
		b.edge(bodyEnd, post)
		return join
	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		// The RangeStmt itself is the header element: it evaluates X and
		// defines Key/Value on each iteration.
		head.Nodes = append(head.Nodes, st)
		join := b.newBlock()
		b.edge(head, join) // range exhausted
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, loopCtx{brk: join, cont: head})
		b.brks = append(b.brks, join)
		bodyEnd := b.stmts(body, st.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.brks = b.brks[:len(b.brks)-1]
		b.edge(bodyEnd, head)
		return join
	case *ast.SwitchStmt:
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		if st.Tag != nil {
			cur.Nodes = append(cur.Nodes, &exprNode{st.Tag})
		}
		return b.cases(cur, st.Body, nil)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		if st.Assign != nil {
			cur.Nodes = append(cur.Nodes, st.Assign)
		}
		return b.cases(cur, st.Body, st)
	case *ast.SelectStmt:
		join := b.newBlock()
		hasDefault := false
		b.brks = append(b.brks, join)
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			b.edge(cur, caseB)
			if cc.Comm != nil {
				caseB.Nodes = append(caseB.Nodes, cc.Comm)
			} else {
				hasDefault = true
			}
			end := b.stmts(caseB, cc.Body)
			b.edge(end, join)
		}
		b.brks = b.brks[:len(b.brks)-1]
		_ = hasDefault // a select with no ready case blocks; join is still the only exit
		return join
	default:
		// Assign, Decl, Expr, Go, Defer, Send, IncDec, Empty: plain.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// cases lays out a (type) switch body. ts is non-nil for type switches
// and is attached to each CaseClause element so reaching definitions can
// bind the per-case implicit variable.
func (b *cfgBuilder) cases(cur *Block, body *ast.BlockStmt, ts *ast.TypeSwitchStmt) *Block {
	join := b.newBlock()
	b.brks = append(b.brks, join)
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseB := b.newBlock()
		b.edge(cur, caseB)
		// The CaseClause element evaluates the case expressions and, for
		// type switches, defines the per-case implicit variable.
		caseB.Nodes = append(caseB.Nodes, cc)
		end := b.stmts(caseB, cc.Body)
		b.edge(end, join)
	}
	b.brks = b.brks[:len(b.brks)-1]
	if !hasDefault {
		b.edge(cur, join)
	}
	return join
}

// exprNode wraps an expression evaluated for control flow (an if/for
// condition or switch tag) so it can sit in a Block's element list.
type exprNode struct {
	X ast.Expr
}

func (e *exprNode) Pos() token.Pos { return e.X.Pos() }
func (e *exprNode) End() token.Pos { return e.X.End() }
