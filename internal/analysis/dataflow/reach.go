package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DefKind classifies how a definition binds its variable.
type DefKind int

const (
	// DefAssign is an ordinary assignment or initialized var spec; Rhs is
	// the defining expression and RhsIndex the result slot (x, y := f()
	// gives y RhsIndex 1).
	DefAssign DefKind = iota
	// DefParam is a parameter, receiver, or named result (no Rhs).
	DefParam
	// DefDecl is an uninitialized var declaration (zero value, no Rhs).
	DefDecl
	// DefRange binds a range key/value; Rhs is the ranged-over operand
	// (the value aliases its elements).
	DefRange
	// DefCase binds a type-switch case's implicit variable; Rhs is the
	// switch operand.
	DefCase
)

// A Def is one definition of a local variable.
type Def struct {
	Var      *types.Var
	Kind     DefKind
	Rhs      ast.Expr
	RhsIndex int
	// Multi marks a definition from a multi-value assignment
	// (x, y := f()); RhsIndex is meaningful only then.
	Multi bool
	Node  ast.Node // the defining statement/clause
	id    int
}

// Pos reports the definition site.
func (d *Def) Pos() token.Pos { return d.Node.Pos() }

// Reach holds the reaching-definitions solution for one function body.
type Reach struct {
	Graph *Graph
	Info  *types.Info

	defs  []*Def
	byVar map[*types.Var][]*Def
	// pre maps each CFG element to the set of defs reaching its start.
	pre map[ast.Node]defset
	// elems lists CFG elements in block layout order, for position lookup.
	elems []ast.Node
	// lits are the ranges of function literals inside elements: uses
	// inside a literal see every def of the variable (the closure may run
	// at any later point).
	lits []posRange
}

type posRange struct{ lo, hi token.Pos }

type defset map[int]bool

func (s defset) clone() defset {
	c := make(defset, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s defset) addAll(o defset) bool {
	changed := false
	for k := range o {
		if !s[k] {
			s[k] = true
			changed = true
		}
	}
	return changed
}

// ReachingDefs solves reaching definitions for fn's body over its CFG.
// recv may be nil. Tolerant of missing type info: idents the checker
// could not resolve simply contribute no definitions.
func ReachingDefs(g *Graph, info *types.Info, ftype *ast.FuncType, recv *ast.FieldList) *Reach {
	r := &Reach{
		Graph: g,
		Info:  info,
		byVar: make(map[*types.Var][]*Def),
		pre:   make(map[ast.Node]defset),
	}
	entry := make(defset)
	addParam := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v := r.objOf(name); v != nil {
					d := r.newDef(&Def{Var: v, Kind: DefParam, Node: name})
					entry[d.id] = true
				}
			}
		}
	}
	addParam(recv)
	if ftype != nil {
		addParam(ftype.Params)
		addParam(ftype.Results)
	}

	// Collect every def, per element.
	elemDefs := make(map[ast.Node][]*Def)
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			ds := r.defsOf(n)
			elemDefs[n] = ds
			r.elems = append(r.elems, n)
			ast.Inspect(nodeOf(n), func(c ast.Node) bool {
				if fl, ok := c.(*ast.FuncLit); ok {
					r.lits = append(r.lits, posRange{fl.Body.Pos(), fl.Body.End()})
					return false
				}
				return true
			})
		}
	}

	// Worklist over blocks: in = union of preds' out; out via replay.
	in := make([]defset, len(g.Blocks))
	out := make([]defset, len(g.Blocks))
	for i := range in {
		in[i] = make(defset)
		out[i] = make(defset)
	}
	in[g.Entry.Index] = entry.clone()
	preds := make([][]int, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk.Index)
		}
	}
	work := make([]int, 0, len(g.Blocks))
	for i := range g.Blocks {
		work = append(work, i)
	}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		blk := g.Blocks[bi]
		state := in[bi].clone()
		for _, p := range preds[bi] {
			state.addAll(out[p])
		}
		in[bi] = state.clone()
		for _, n := range blk.Nodes {
			r.apply(state, elemDefs[n])
		}
		if out[bi].addAll(state) {
			for _, s := range blk.Succs {
				work = append(work, s.Index)
			}
		}
	}

	// Final replay to record each element's pre-state.
	for _, blk := range g.Blocks {
		state := in[blk.Index].clone()
		for _, p := range preds[blk.Index] {
			state.addAll(out[p])
		}
		for _, n := range blk.Nodes {
			r.pre[n] = state.clone()
			r.apply(state, elemDefs[n])
		}
	}
	return r
}

// apply kills the state's defs of each newly defined var and adds the
// new defs.
func (r *Reach) apply(state defset, ds []*Def) {
	for _, d := range ds {
		for _, old := range r.byVar[d.Var] {
			delete(state, old.id)
		}
	}
	for _, d := range ds {
		state[d.id] = true
	}
}

// Defs returns every definition of v in the function.
func (r *Reach) Defs(v *types.Var) []*Def { return r.byVar[v] }

// DefsReaching returns the definitions of use's variable that may reach
// the use. A use inside a function literal sees every definition (the
// closure can run at any later point). A use of an unknown or non-local
// variable returns nil.
func (r *Reach) DefsReaching(use *ast.Ident) []*Def {
	v := r.objOf(use)
	if v == nil {
		return nil
	}
	all := r.byVar[v]
	if len(all) == 0 {
		return nil
	}
	for _, lr := range r.lits {
		if use.Pos() >= lr.lo && use.Pos() < lr.hi {
			return all
		}
	}
	elem := r.elemContaining(use.Pos())
	if elem == nil {
		return all
	}
	state := r.pre[elem]
	var out []*Def
	for _, d := range all {
		if state[d.id] {
			out = append(out, d)
		}
	}
	if out == nil {
		// The use's def is inside the same element (x := f(); use in the
		// same statement list position) or flow was imprecise; fall back
		// to all defs rather than claiming the variable is undefined.
		return all
	}
	return out
}

// elemContaining finds the innermost CFG element covering pos.
func (r *Reach) elemContaining(pos token.Pos) ast.Node {
	var best ast.Node
	var bestSpan token.Pos = 1 << 60
	for _, n := range r.elems {
		node := nodeOf(n)
		if pos < node.Pos() || pos >= node.End() {
			continue
		}
		if span := node.End() - node.Pos(); span < bestSpan {
			best, bestSpan = n, span
		}
	}
	return best
}

// objOf resolves an ident to the *types.Var it defines or uses.
func (r *Reach) objOf(id *ast.Ident) *types.Var {
	if obj, ok := r.Info.Defs[id]; ok {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	if v, ok := r.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (r *Reach) newDef(d *Def) *Def {
	d.id = len(r.defs)
	r.defs = append(r.defs, d)
	r.byVar[d.Var] = append(r.byVar[d.Var], d)
	return d
}

// defsOf extracts the definitions generated by one CFG element.
func (r *Reach) defsOf(n ast.Node) []*Def {
	var out []*Def
	switch st := n.(type) {
	case *ast.AssignStmt:
		multi := len(st.Lhs) > 1 && len(st.Rhs) == 1
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := r.objOf(id)
			if v == nil {
				continue
			}
			d := &Def{Var: v, Kind: DefAssign, Node: st}
			if multi {
				d.Rhs, d.RhsIndex, d.Multi = st.Rhs[0], i, true
			} else if i < len(st.Rhs) {
				d.Rhs = st.Rhs[i]
			}
			out = append(out, r.newDef(d))
		}
	case *ast.IncDecStmt:
		if id, ok := st.X.(*ast.Ident); ok {
			if v := r.objOf(id); v != nil {
				out = append(out, r.newDef(&Def{Var: v, Kind: DefAssign, Rhs: st.X, Node: st}))
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return out
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name == "_" {
					continue
				}
				v := r.objOf(name)
				if v == nil {
					continue
				}
				d := &Def{Var: v, Node: st}
				switch {
				case len(vs.Values) == 1 && len(vs.Names) > 1:
					d.Kind, d.Rhs, d.RhsIndex, d.Multi = DefAssign, vs.Values[0], i, true
				case i < len(vs.Values):
					d.Kind, d.Rhs = DefAssign, vs.Values[i]
				default:
					d.Kind = DefDecl
				}
				out = append(out, r.newDef(d))
			}
		}
	case *ast.RangeStmt:
		for _, lhs := range []ast.Expr{st.Key, st.Value} {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if v := r.objOf(id); v != nil {
				out = append(out, r.newDef(&Def{Var: v, Kind: DefRange, Rhs: st.X, Node: st}))
			}
		}
	case *ast.CaseClause:
		// Type-switch implicit variable: one distinct object per clause.
		if obj, ok := r.Info.Implicits[st]; ok {
			if v, ok := obj.(*types.Var); ok {
				out = append(out, r.newDef(&Def{Var: v, Kind: DefCase, Rhs: nil, Node: st}))
			}
		}
	}
	return out
}

// nodeOf unwraps the cfg's exprNode wrapper.
func nodeOf(n ast.Node) ast.Node {
	if e, ok := n.(*exprNode); ok {
		return e.X
	}
	return n
}
