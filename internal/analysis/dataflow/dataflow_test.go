package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// checkSrc parses and type-checks one synthetic file the same tolerant
// way the loader does (no imports needed for these fixtures).
func checkSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := types.Config{Error: func(error) {}}
	conf.Check("fixture", fset, []*ast.File{f}, info)
	return fset, f, info
}

// funcNamed finds the declared function name in f.
func funcNamed(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no func %q in fixture", name)
	return nil
}

// argIdent finds the first call to sink and returns its first argument
// as an ident — the "use" under test.
func argIdent(t *testing.T, fd *ast.FuncDecl, sink string) *ast.Ident {
	t.Helper()
	var out *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == sink {
			out = call.Args[0].(*ast.Ident)
			return false
		}
		return true
	})
	if out == nil {
		t.Fatalf("no call to %s in fixture", sink)
	}
	return out
}

// rhsNames renders the defs' defining expressions for assertions.
func rhsNames(defs []*Def) []string {
	var out []string
	for _, d := range defs {
		switch {
		case d.Kind == DefParam:
			out = append(out, "param")
		case d.Rhs == nil:
			out = append(out, "zero")
		default:
			if id, ok := d.Rhs.(*ast.Ident); ok {
				out = append(out, id.Name)
			} else if call, ok := d.Rhs.(*ast.CallExpr); ok {
				out = append(out, "call:"+call.Fun.(*ast.Ident).Name)
			} else {
				out = append(out, "expr")
			}
		}
	}
	return out
}

func wantDefs(t *testing.T, got []*Def, want ...string) {
	t.Helper()
	names := rhsNames(got)
	if len(names) != len(want) {
		t.Fatalf("got defs %v, want %v", names, want)
	}
	seen := make(map[string]bool)
	for _, n := range names {
		seen[n] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Fatalf("got defs %v, want %v", names, want)
		}
	}
}

func solve(t *testing.T, f *ast.File, info *types.Info, fn string) (*ast.FuncDecl, *Reach) {
	t.Helper()
	fd := funcNamed(t, f, fn)
	r := Analyze(info, fd)
	if r == nil {
		t.Fatalf("no body for %s", fn)
	}
	return fd, r
}

func TestReachStraightLineKill(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func use(interface{}) {}
func f(a, b []int) {
	x := a
	use(x)
	x = b
	use(x)
}`)
	fd, r := solve(t, f, info, "f")
	var uses []*ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
				uses = append(uses, call.Args[0].(*ast.Ident))
			}
		}
		return true
	})
	if len(uses) != 2 {
		t.Fatalf("want 2 uses, got %d", len(uses))
	}
	wantDefs(t, r.DefsReaching(uses[0]), "a")
	wantDefs(t, r.DefsReaching(uses[1]), "b")
}

func TestReachBranchMerge(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func use(interface{}) {}
func f(cond bool, a, b []int) {
	x := a
	if cond {
		x = b
	}
	use(x)
}`)
	fd, r := solve(t, f, info, "f")
	wantDefs(t, r.DefsReaching(argIdent(t, fd, "use")), "a", "b")
}

func TestReachBranchKillsOnBothArms(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func use(interface{}) {}
func f(cond bool, a, b, c []int) {
	x := a
	if cond {
		x = b
	} else {
		x = c
	}
	use(x)
}`)
	fd, r := solve(t, f, info, "f")
	wantDefs(t, r.DefsReaching(argIdent(t, fd, "use")), "b", "c")
}

func TestReachLoopBackEdge(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func use(interface{}) {}
func next() []int { return nil }
func f(a []int) {
	x := a
	for i := 0; i < 3; i++ {
		use(x)
		x = next()
	}
}`)
	fd, r := solve(t, f, info, "f")
	// Inside the loop both the initial def and the back-edge def reach.
	wantDefs(t, r.DefsReaching(argIdent(t, fd, "use")), "a", "call:next")
}

func TestReachClosureSeesAllDefs(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func use(interface{}) {}
func f(a, b []int) {
	x := a
	g := func() { use(x) }
	x = b
	g()
}`)
	fd, r := solve(t, f, info, "f")
	// The closure body may run after x = b: both defs must reach.
	wantDefs(t, r.DefsReaching(argIdent(t, fd, "use")), "a", "b")
}

func TestReachRangeAndTypeSwitch(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func use(interface{}) {}
func f(items [][]int, v interface{}) {
	for _, it := range items {
		use(it)
	}
	switch m := v.(type) {
	case []int:
		use(m)
	}
}`)
	fd, r := solve(t, f, info, "f")
	var uses []*ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
				uses = append(uses, call.Args[0].(*ast.Ident))
			}
		}
		return true
	})
	itDefs := r.DefsReaching(uses[0])
	if len(itDefs) != 1 || itDefs[0].Kind != DefRange {
		t.Fatalf("range var: got %+v", itDefs)
	}
	mDefs := r.DefsReaching(uses[1])
	if len(mDefs) != 1 || mDefs[0].Kind != DefCase {
		t.Fatalf("type-switch var: got %+v", mDefs)
	}
}

func TestCFGSelectAndBreak(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func use(interface{}) {}
func f(ch chan []int, stop chan struct{}, a []int) {
	x := a
	for {
		select {
		case v := <-ch:
			x = v
		case <-stop:
			use(x)
			return
		}
	}
}`)
	fd, r := solve(t, f, info, "f")
	// Both the initial def and the select-case def reach the use.
	wantDefs(t, r.DefsReaching(argIdent(t, fd, "use")), "a", "v")
}

// sources marks parameters named "src" as tainted.
func srcConfig(info *types.Info) TaintConfig {
	return TaintConfig{
		Info: info,
		IsSource: func(expr ast.Expr) (string, bool) {
			if id, ok := expr.(*ast.Ident); ok && id.Name == "src" {
				if _, isVar := info.Uses[id].(*types.Var); isVar {
					return "src", true
				}
				if _, isVar := info.Defs[id].(*types.Var); isVar {
					return "src", true
				}
			}
			return "", false
		},
	}
}

func escKinds(escs []Escape) []EscapeKind {
	var out []EscapeKind
	for _, e := range escs {
		out = append(out, e.Kind)
	}
	return out
}

func TestEscapeFieldStore(t *testing.T) {
	_, f, info := checkSrc(t, `package p
type S struct{ buf []byte }
func (s *S) keep(src []byte) {
	s.buf = src
}`)
	_, r := solve(t, f, info, "keep")
	escs := Escapes(r, srcConfig(info))
	if len(escs) != 1 || escs[0].Kind != EscStore {
		t.Fatalf("want one EscStore, got %v", escKinds(escs))
	}
}

func TestEscapeThroughLocalAlias(t *testing.T) {
	_, f, info := checkSrc(t, `package p
type S struct{ buf []byte }
func (s *S) keep(src []byte) {
	tmp := src
	s.buf = tmp
}`)
	_, r := solve(t, f, info, "keep")
	escs := Escapes(r, srcConfig(info))
	if len(escs) != 1 || escs[0].Kind != EscStore {
		t.Fatalf("want one EscStore through alias, got %v", escKinds(escs))
	}
}

func TestEscapeLocalStoreThenReturn(t *testing.T) {
	_, f, info := checkSrc(t, `package p
type box struct{ b []byte }
func f(src []byte) box {
	var out box
	out.b = src
	return out
}`)
	_, r := solve(t, f, info, "f")
	escs := Escapes(r, srcConfig(info))
	if len(escs) != 1 || escs[0].Kind != EscReturn {
		t.Fatalf("want EscReturn via augmented local, got %v", escKinds(escs))
	}
}

func TestNoEscapeLocalOnly(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func sum(src []uint64) uint64 {
	var total uint64
	for _, v := range src {
		total += v
	}
	return total
}`)
	_, r := solve(t, f, info, "sum")
	if escs := Escapes(r, srcConfig(info)); len(escs) != 0 {
		t.Fatalf("value-typed result should not escape, got %v", escKinds(escs))
	}
}

func TestEscapeValueCopyKillsTaint(t *testing.T) {
	_, f, info := checkSrc(t, `package p
type S struct{ keep []uint64 }
func (s *S) clone(src []uint64) {
	s.keep = append([]uint64(nil), src...)
}`)
	_, r := solve(t, f, info, "clone")
	if escs := Escapes(r, srcConfig(info)); len(escs) != 0 {
		t.Fatalf("append of value elements into a fresh slice must be clean, got %v", escKinds(escs))
	}
}

func TestEscapeAppendAliasesBase(t *testing.T) {
	_, f, info := checkSrc(t, `package p
type S struct{ keep []byte }
func (s *S) keepIt(src []byte) {
	s.keep = append(src, 0)
}`)
	_, r := solve(t, f, info, "keepIt")
	escs := Escapes(r, srcConfig(info))
	if len(escs) != 1 || escs[0].Kind != EscStore {
		t.Fatalf("append aliases arg0's backing, got %v", escKinds(escs))
	}
}

func TestEscapeSendAndGoCapture(t *testing.T) {
	_, f, info := checkSrc(t, `package p
func f(src []byte, ch chan []byte) {
	ch <- src
	go func() {
		_ = len(src)
	}()
}`)
	_, r := solve(t, f, info, "f")
	escs := Escapes(r, srcConfig(info))
	kinds := escKinds(escs)
	var send, capture bool
	for _, k := range kinds {
		if k == EscSend {
			send = true
		}
		if k == EscGoCapture {
			capture = true
		}
	}
	if !send || !capture {
		t.Fatalf("want EscSend and EscGoCapture, got %v", kinds)
	}
}

// TestSummarizerCrossFunction checks retention through a helper: the
// caller passes a source to a callee that stores it, and the Summarizer
// propagates that as EscCallRetain.
func TestSummarizerCrossFunction(t *testing.T) {
	dir := t.TempDir()
	src := `package p

type sink struct{ held []byte }

func (s *sink) hold(b []byte) { s.held = b }

func (s *sink) passThrough(b []byte) []byte { return b }

func (s *sink) consume(b []byte) int { return len(b) }

func f(s *sink, src []byte) {
	s.hold(src)
}

func g(s *sink, src []byte) []byte {
	return s.passThrough(src)
}

func h(s *sink, src []byte) int {
	return s.consume(src)
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(analysis.ModuleResolver(dir, "fixture"))
	pkg, err := loader.Load("fixture")
	if err != nil {
		t.Fatal(err)
	}
	sums := NewSummarizer(loader)
	cfg := TaintConfig{
		Info: pkg.Info,
		IsSource: func(expr ast.Expr) (string, bool) {
			if id, ok := expr.(*ast.Ident); ok && id.Name == "src" {
				return "src", true
			}
			return "", false
		},
		Summary: func(call *ast.CallExpr) *Summary {
			return sums.ForCall(pkg.Info, call)
		},
	}
	run := func(fn string) []Escape {
		fd := funcNamed(t, pkg.Files[0], fn)
		r := Analyze(pkg.Info, fd)
		return Escapes(r, cfg)
	}
	if escs := run("f"); len(escs) != 1 || escs[0].Kind != EscCallRetain {
		t.Fatalf("f: want EscCallRetain via hold summary, got %v", escKinds(escs))
	}
	if escs := run("g"); len(escs) != 1 || escs[0].Kind != EscReturn {
		t.Fatalf("g: want EscReturn via passThrough flow, got %v", escKinds(escs))
	}
	if escs := run("h"); len(escs) != 0 {
		t.Fatalf("h: consume neither retains nor flows, got %v", escKinds(escs))
	}
}
