package dataflow

import (
	"go/ast"
	"go/types"
)

// EscapeKind classifies how a tainted value outlives its function.
type EscapeKind int

const (
	// EscStore: stored into a field, map, slice element, or pointer
	// target rooted outside the function's locals.
	EscStore EscapeKind = iota
	// EscSend: sent on a channel.
	EscSend
	// EscReturn: returned to the caller.
	EscReturn
	// EscGoCapture: captured by a go (or defer) statement's function.
	EscGoCapture
	// EscCallRetain: passed to a callee whose summary retains the
	// argument.
	EscCallRetain
)

func (k EscapeKind) String() string {
	switch k {
	case EscStore:
		return "stored"
	case EscSend:
		return "sent on a channel"
	case EscReturn:
		return "returned"
	case EscGoCapture:
		return "captured by a goroutine"
	case EscCallRetain:
		return "retained by the callee"
	}
	return "escaped"
}

// An Escape records one point where a tainted value may outlive the
// enclosing call.
type Escape struct {
	Kind    EscapeKind
	Node    ast.Node // the sink statement or expression
	Expr    ast.Expr // the tainted expression at the sink
	Sources []string // sorted source labels
}

// A Summary describes one callee's effect on its operands. Operand 0 is
// the receiver when the callee is a method; parameters follow. For a
// variadic callee the last entry covers every trailing argument.
type Summary struct {
	// Retains[i]: operand i may be stored somewhere that outlives the
	// call.
	Retains []bool
	// Flows[i]: operand i's taint may flow into a result value.
	Flows []bool
}

// TaintConfig parameterizes one Escapes run.
type TaintConfig struct {
	Info *types.Info

	// IsSource reports whether evaluating expr introduces taint (e.g. a
	// tuple.DecodeSlab call, a pool Get, a scratch parameter ident) and
	// with what label.
	IsSource func(expr ast.Expr) (string, bool)

	// Sanitizes reports whether call launders its operands' taint (e.g.
	// Result.Clone). Optional.
	Sanitizes func(call *ast.CallExpr) bool

	// Summary returns the callee summary for call, or nil when the
	// callee is unknown or external (treated optimistically: arguments
	// neither retained nor flowing to results). Optional.
	Summary func(call *ast.CallExpr) *Summary

	// SourceResult refines IsSource for multi-value source calls: when
	// a definition binds result `index` of a call that IsSource
	// matched, SourceResult decides whether that particular result is
	// tainted (e.g. DecodeSlab's Tuple result aliases the slab but its
	// int/error results do not). Optional; when nil, every result of a
	// source call is tainted.
	SourceResult func(call *ast.CallExpr, index int) (string, bool)

	// IgnoreReturn suppresses EscReturn sinks (useful when the caller's
	// contract is exactly "return the scratch value"). Optional.
	IgnoreReturn bool
}

// labelset is a small provenance set.
type labelset map[string]bool

func (s labelset) add(o labelset) {
	for k := range o {
		s[k] = true
	}
}

func (s labelset) sorted() []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	// insertion sort: sets are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type escaper struct {
	r   *Reach
	cfg TaintConfig

	// memo caches taintOf per expression node; inProgress guards cycles
	// (x = x aliasing through defs) — a cycle contributes no new taint.
	memo       map[ast.Expr]labelset
	inProgress map[ast.Expr]bool
	// varMemo caches per-variable taint (union over defs + augment).
	varMemo   map[*types.Var]labelset
	varActive map[*types.Var]bool
	// augment holds extra taint a local variable picked up through
	// stores into its fields/elements (lv.f = tainted ⇒ lv tainted).
	augment map[*types.Var]labelset

	escapes []Escape
}

// Escapes runs the provenance-tracking escape analysis over one
// function. r must be the ReachingDefs solution for the same body.
func Escapes(r *Reach, cfg TaintConfig) []Escape {
	e := &escaper{
		r:          r,
		cfg:        cfg,
		memo:       make(map[ast.Expr]labelset),
		inProgress: make(map[ast.Expr]bool),
		varMemo:    make(map[*types.Var]labelset),
		varActive:  make(map[*types.Var]bool),
		augment:    make(map[*types.Var]labelset),
	}
	// Pass 1: collect augmented taint from stores whose root is local.
	// Iterate to a fixed point: `a.f = src; b.f = a; e.g = b` needs two
	// rounds for b. Bounded by the number of locals.
	for changed := true; changed; {
		changed = false
		e.varMemo = make(map[*types.Var]labelset)
		e.memo = make(map[ast.Expr]labelset)
		for _, blk := range r.Graph.Blocks {
			for _, n := range blk.Nodes {
				if changed2 := e.collectAugments(nodeOf(n)); changed2 {
					changed = true
				}
			}
		}
	}
	// Pass 2: report sinks.
	for _, blk := range r.Graph.Blocks {
		for _, n := range blk.Nodes {
			e.visitSinks(nodeOf(n))
		}
	}
	return e.escapes
}

// rootVar returns the local variable at the base of a selector/index
// chain (a.b[i].c → a), or nil when the base is not a plain local.
func (e *escaper) rootVar(x ast.Expr) *types.Var {
	for {
		switch t := x.(type) {
		case *ast.ParenExpr:
			x = t.X
		case *ast.SelectorExpr:
			x = t.X
		case *ast.IndexExpr:
			x = t.X
		case *ast.StarExpr:
			x = t.X
		case *ast.Ident:
			if v, ok := e.r.Info.Uses[t].(*types.Var); ok && !v.IsField() {
				return v
			}
			if v, ok := e.r.Info.Defs[t].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// storeIsAugment reports whether a store through root stays inside the
// function: root must be a true local (not a parameter or receiver —
// those alias caller-provided memory, so a store through them outlives
// the call).
func (e *escaper) storeIsAugment(root *types.Var) bool {
	if root == nil || !e.isLocal(root) {
		return false
	}
	for _, d := range e.r.byVar[root] {
		if d.Kind == DefParam {
			return false
		}
	}
	return true
}

// isLocal reports whether v is one of this function's variables (has a
// definition or is a known var at all). Package-level vars and fields
// are not local.
func (e *escaper) isLocal(v *types.Var) bool {
	if v == nil || v.IsField() {
		return false
	}
	// A variable we collected defs for is function-local; package-level
	// vars never appear in byVar.
	if len(e.r.byVar[v]) > 0 {
		return true
	}
	// Closure-captured or otherwise unseen: treat params/locals of the
	// enclosing scope conservatively as non-local.
	return false
}

// collectAugments records lv-taint for stores into a local root and
// reports whether anything changed.
func (e *escaper) collectAugments(n ast.Node) bool {
	changed := false
	ast.Inspect(n, func(c ast.Node) bool {
		if fl, ok := c.(*ast.FuncLit); ok {
			_ = fl
			return false
		}
		as, ok := c.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				continue // plain assignment: handled by reaching defs
			}
			if !e.storeIsAugment(e.rootVar(lhs)) {
				continue
			}
			root := e.rootVar(lhs)
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			t := e.taintOf(rhs)
			if len(t) == 0 {
				continue
			}
			aug := e.augment[root]
			if aug == nil {
				aug = make(labelset)
				e.augment[root] = aug
			}
			before := len(aug)
			aug.add(t)
			if len(aug) != before {
				changed = true
			}
		}
		return true
	})
	return changed
}

// visitSinks walks one CFG element reporting escapes.
func (e *escaper) visitSinks(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch st := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if id, isIdent := lhs.(*ast.Ident); isIdent {
					// Local rebinding is handled by reaching defs; only a
					// store to a package-level variable escapes here.
					v, ok := e.r.Info.Uses[id].(*types.Var)
					if !ok || e.isLocal(v) || v.IsField() {
						continue
					}
				} else if e.storeIsAugment(e.rootVar(lhs)) {
					continue // augments the local; not an escape by itself
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if t := e.taintOf(rhs); len(t) > 0 {
					e.escapes = append(e.escapes, Escape{Kind: EscStore, Node: st, Expr: rhs, Sources: t.sorted()})
				}
			}
		case *ast.SendStmt:
			if t := e.taintOf(st.Value); len(t) > 0 {
				e.escapes = append(e.escapes, Escape{Kind: EscSend, Node: st, Expr: st.Value, Sources: t.sorted()})
			}
		case *ast.ReturnStmt:
			if e.cfg.IgnoreReturn {
				return true
			}
			for _, res := range st.Results {
				if t := e.taintOf(res); len(t) > 0 {
					e.escapes = append(e.escapes, Escape{Kind: EscReturn, Node: st, Expr: res, Sources: t.sorted()})
				}
			}
		case *ast.GoStmt:
			e.goCapture(st, st.Call)
		case *ast.DeferStmt:
			e.goCapture(st, st.Call)
		case *ast.CallExpr:
			e.callRetain(st)
		}
		return true
	})
}

// goCapture flags tainted values reachable from a go/defer call: tainted
// arguments, and tainted locals referenced inside a function-literal
// body.
func (e *escaper) goCapture(stmt ast.Node, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if t := e.taintOf(arg); len(t) > 0 {
			e.escapes = append(e.escapes, Escape{Kind: EscGoCapture, Node: stmt, Expr: arg, Sources: t.sorted()})
		}
	}
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fl.Body, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := e.r.Info.Uses[id].(*types.Var)
		if !ok || !e.isLocal(v) {
			return true
		}
		if t := e.varTaint(v); len(t) > 0 {
			e.escapes = append(e.escapes, Escape{Kind: EscGoCapture, Node: stmt, Expr: id, Sources: t.sorted()})
		}
		return true
	})
}

// callRetain flags tainted arguments passed to callees whose summary
// says the operand is retained. Unknown callees are optimistic.
func (e *escaper) callRetain(call *ast.CallExpr) {
	if e.cfg.Summary == nil {
		return
	}
	sum := e.cfg.Summary(call)
	if sum == nil {
		return
	}
	ops := operands(e.r.Info, call)
	for i, op := range ops {
		ri := i
		if ri >= len(sum.Retains) {
			ri = len(sum.Retains) - 1 // variadic tail
		}
		if ri < 0 || !sum.Retains[ri] {
			continue
		}
		if t := e.taintOf(op); len(t) > 0 {
			e.escapes = append(e.escapes, Escape{Kind: EscCallRetain, Node: call, Expr: op, Sources: t.sorted()})
		}
	}
}

// operands lists a call's receiver (for method calls like x.M(...))
// followed by its arguments, matching Summary indexing. A package
// qualifier (pkg.F) is not a receiver.
func operands(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var ops []ast.Expr
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		isPkg := false
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, pkgName := info.Uses[id].(*types.PkgName); pkgName {
				isPkg = true
			}
		}
		if !isPkg {
			ops = append(ops, sel.X)
		}
	}
	return append(ops, call.Args...)
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

// refTyped reports whether t can carry an alias to shared backing
// storage. Plain value types (numerics, bool, string) kill taint.
func refTyped(t types.Type) bool {
	if t == nil {
		return true // unknown: stay conservative, keep taint
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.Invalid
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return refTyped(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refTyped(u.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return true
}

// taintOf computes the provenance set of expr.
func (e *escaper) taintOf(expr ast.Expr) labelset {
	if expr == nil {
		return nil
	}
	if m, ok := e.memo[expr]; ok {
		return m
	}
	if e.inProgress[expr] {
		return nil
	}
	e.inProgress[expr] = true
	t := e.taintOf1(expr)
	delete(e.inProgress, expr)
	// Value-typed expressions cannot carry an alias out.
	if len(t) > 0 {
		if tv, ok := e.r.Info.Types[expr]; ok && !refTyped(tv.Type) {
			t = nil
		}
	}
	e.memo[expr] = t
	return t
}

func (e *escaper) taintOf1(expr ast.Expr) labelset {
	out := make(labelset)
	if e.cfg.IsSource != nil {
		if label, ok := e.cfg.IsSource(expr); ok {
			out[label] = true
			return out
		}
	}
	switch x := expr.(type) {
	case *ast.Ident:
		v, ok := e.r.Info.Uses[x].(*types.Var)
		if !ok {
			return nil
		}
		out.add(e.varTaintAt(v, x))
	case *ast.ParenExpr:
		out.add(e.taintOf(x.X))
	case *ast.SelectorExpr:
		// Field access aliases the base's backing.
		out.add(e.taintOf(x.X))
	case *ast.IndexExpr:
		out.add(e.taintOf(x.X))
	case *ast.SliceExpr:
		out.add(e.taintOf(x.X))
	case *ast.StarExpr:
		out.add(e.taintOf(x.X))
	case *ast.UnaryExpr:
		out.add(e.taintOf(x.X))
	case *ast.TypeAssertExpr:
		out.add(e.taintOf(x.X))
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out.add(e.taintOf(el))
		}
	case *ast.CallExpr:
		out.add(e.callTaint(x))
	case *ast.BinaryExpr:
		// Only string concat could propagate, and strings are immutable
		// copies of their operands' bytes only when built via +; but a
		// string header still aliases in conversions, not in +. Safe to
		// drop.
		return nil
	}
	return out
}

// callTaint computes the taint of a call's results.
func (e *escaper) callTaint(call *ast.CallExpr) labelset {
	if e.cfg.Sanitizes != nil && e.cfg.Sanitizes(call) {
		return nil
	}
	// Builtins that alias their operand's backing.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "append":
			out := make(labelset)
			if len(call.Args) > 0 {
				out.add(e.taintOf(call.Args[0]))
			}
			for i, a := range call.Args[1:] {
				t := types.Type(nil)
				if tv, ok := e.r.Info.Types[a]; ok {
					t = tv.Type
				}
				// append(dst, src...) copies src's elements, so the
				// element type decides whether aliases are carried in.
				if call.Ellipsis.IsValid() && i == len(call.Args)-2 && t != nil {
					if sl, ok := t.Underlying().(*types.Slice); ok {
						t = sl.Elem()
					}
				}
				if t != nil && !refTyped(t) {
					continue // value elements are copied in
				}
				out.add(e.taintOf(a))
			}
			return out
		case "copy", "len", "cap", "delete", "make", "new", "min", "max":
			return nil
		}
	}
	// Conversions alias for slice<->slice / string<->[]byte... a
	// conversion T(x) shows up as a CallExpr whose Fun is a type.
	if tv, ok := e.r.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return e.taintOf(call.Args[0]).clone()
		}
		return nil
	}
	sum := (*Summary)(nil)
	if e.cfg.Summary != nil {
		sum = e.cfg.Summary(call)
	}
	if sum == nil {
		return nil // unknown/external callee: optimistic
	}
	out := make(labelset)
	for i, op := range operands(e.r.Info, call) {
		fi := i
		if fi >= len(sum.Flows) {
			fi = len(sum.Flows) - 1
		}
		if fi < 0 || !sum.Flows[fi] {
			continue
		}
		out.add(e.taintOf(op))
	}
	return out
}

func (s labelset) clone() labelset {
	c := make(labelset, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// varTaintAt computes the taint of variable v at a particular use,
// following the defs that reach it.
func (e *escaper) varTaintAt(v *types.Var, use *ast.Ident) labelset {
	defs := e.r.DefsReaching(use)
	if defs == nil {
		return e.varTaint(v)
	}
	out := make(labelset)
	out.add(e.augment[v])
	for _, d := range defs {
		out.add(e.defTaint(d))
	}
	return out
}

// varTaint is the flow-insensitive union over every def of v.
func (e *escaper) varTaint(v *types.Var) labelset {
	if m, ok := e.varMemo[v]; ok {
		return m
	}
	if e.varActive[v] {
		return nil
	}
	e.varActive[v] = true
	out := make(labelset)
	out.add(e.augment[v])
	for _, d := range e.r.byVar[v] {
		out.add(e.defTaint(d))
	}
	delete(e.varActive, v)
	e.varMemo[v] = out
	return out
}

func (e *escaper) defTaint(d *Def) labelset {
	switch d.Kind {
	case DefParam:
		if e.cfg.IsSource != nil {
			if id, ok := d.Node.(*ast.Ident); ok {
				if label, ok := e.cfg.IsSource(id); ok {
					return labelset{label: true}
				}
			}
		}
		return nil
	case DefDecl:
		return nil
	case DefAssign, DefRange:
		if d.Rhs == nil {
			return nil
		}
		// A variable of pure value type cannot carry an alias no matter
		// what defined it (the multi-value Rhs has tuple type, so the
		// per-expression kill in taintOf does not see it).
		if d.Var != nil && !refTyped(d.Var.Type()) {
			return nil
		}
		if d.Multi && e.cfg.SourceResult != nil {
			if call, ok := unparen(d.Rhs).(*ast.CallExpr); ok && e.cfg.IsSource != nil {
				if _, isSrc := e.cfg.IsSource(call); isSrc {
					if label, ok := e.cfg.SourceResult(call, d.RhsIndex); ok {
						return labelset{label: true}
					}
					return nil
				}
			}
		}
		return e.taintOf(d.Rhs)
	case DefCase:
		// Type-switch case var inherits from the switch operand; the
		// operand expression isn't recorded here, so stay conservative
		// only if the clause node's switch is tainted — callers that
		// care seed the case var via IsSource.
		return nil
	}
	return nil
}
