// Package senderrcheck forbids discarding the error result of a
// transport Send. Every protocol step in this codebase travels through
// transport.Endpoint.Send; a swallowed send error is a message the
// sender believes delivered and the receiver never saw — exactly the
// silent stall the relocation timeout/abort machinery exists to make
// loud. Send errors must be returned, logged through a component's
// error path, or explicitly waived.
//
// A call is flagged when its callee is a method named Send with the
// endpoint signature — func(partition.NodeID, proto.Message) error —
// on any receiver (the transport.Endpoint interface or a concrete
// endpoint), and that error is discarded: the call stands alone as a
// statement (including go/defer), or the error's position on the left
// side of an assignment is the blank identifier.
//
// Deliberate discards (best-effort sends on shutdown paths, fault
// injection that models loss) carry a //distqlint:allow senderrcheck
// waiver with a rationale.
package senderrcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Parameter types identifying the endpoint Send signature.
const (
	nodeIDType  = "repro/internal/partition.NodeID"
	messageType = "repro/internal/proto.Message"
)

// Analyzer implements the transport send error check.
var Analyzer = &analysis.Analyzer{
	Name: "senderrcheck",
	Doc:  "errors from transport Endpoint.Send must be handled, not discarded",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				check(pass, st.X, -1)
			case *ast.GoStmt:
				check(pass, st.Call, -1)
			case *ast.DeferStmt:
				check(pass, st.Call, -1)
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 {
					if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
						check(pass, call, blankErrIndex(st.Lhs))
					}
				}
			}
			return true
		})
	}
	return nil
}

// blankErrIndex reports the index of the last LHS element if it is the
// blank identifier, else -2 (meaning: error is bound, nothing to flag).
// Send's error is its only result, so only the last position matters.
func blankErrIndex(lhs []ast.Expr) int {
	if len(lhs) == 0 {
		return -2
	}
	if id, ok := lhs[len(lhs)-1].(*ast.Ident); ok && id.Name == "_" {
		return len(lhs) - 1
	}
	return -2
}

// check flags expr if it is an endpoint Send whose error is discarded.
// errIdx -1 means every result is discarded (statement position);
// errIdx >= 0 means the final LHS slot is blank; -2 means bound.
func check(pass *analysis.Pass, expr ast.Expr, errIdx int) {
	if errIdx == -2 {
		return
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Send" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	params := sig.Params()
	if params.Len() != 2 ||
		params.At(0).Type().String() != nodeIDType ||
		params.At(1).Type().String() != messageType {
		return
	}
	results := sig.Results()
	if results.Len() != 1 {
		return
	}
	named, ok := results.At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return
	}
	pass.Reportf(call.Pos(), "discarded error from %s: an unhandled send failure is a silent protocol stall", types.TypeString(sig.Recv().Type(), relativeTo(pass)))
}

// relativeTo shortens receiver types from the package under analysis.
func relativeTo(pass *analysis.Pass) types.Qualifier {
	return func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return p.Name()
	}
}
