package senderrcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/senderrcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", senderrcheck.Analyzer,
		"repro/internal/transport",   // the guarded API itself: no findings
		"repro/internal/coordinator", // every discard shape, plus handled/waived/lookalike
	)
}
