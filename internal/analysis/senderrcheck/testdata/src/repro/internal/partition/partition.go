// Package partition is a miniature of the real package: just the node
// identifier the endpoint signature mentions.
package partition

type NodeID string
