// Package transport is a miniature of the real package: the Endpoint
// interface plus one concrete implementation, both with the guarded
// Send signature.
package transport

import (
	"repro/internal/partition"
	"repro/internal/proto"
)

type Endpoint interface {
	Node() partition.NodeID
	Send(to partition.NodeID, msg proto.Message) error
	Close() error
}

// Chan is a concrete endpoint; calls through it are guarded too.
type Chan struct{}

func (c *Chan) Node() partition.NodeID                            { return "" }
func (c *Chan) Send(to partition.NodeID, msg proto.Message) error { return nil }
func (c *Chan) Close() error                                      { return nil }
