// Package coordinator exercises every way a Send error can be
// discarded, plus the handled, waived, and lookalike forms.
package coordinator

import (
	"repro/internal/partition"
	"repro/internal/proto"
	"repro/internal/transport"
)

// mailer is a lookalike: method named Send, different signature.
type mailer struct{}

func (mailer) Send(addr string, body int) error { return nil }

func drive(ep transport.Endpoint, ch *transport.Chan, m mailer, to partition.NodeID, msg proto.Message) {
	ep.Send(to, msg)       // want `discarded error from transport\.Endpoint`
	go ep.Send(to, msg)    // want `discarded error from transport\.Endpoint`
	defer ep.Send(to, msg) // want `discarded error from transport\.Endpoint`
	_ = ep.Send(to, msg)   // want `discarded error from transport\.Endpoint`
	ch.Send(to, msg)       // want `discarded error from \*transport\.Chan`

	// Bound errors, error-free endpoint methods, and signature
	// lookalikes are fine.
	if err := ep.Send(to, msg); err != nil {
		panic(err)
	}
	err := ch.Send(to, msg)
	_ = err
	ep.Node()
	m.Send("addr", 1)

	//distqlint:allow senderrcheck: best-effort notification on shutdown path
	ep.Send(to, msg)
}
