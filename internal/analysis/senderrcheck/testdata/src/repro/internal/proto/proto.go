// Package proto is a miniature of the real package: just the message
// interface the endpoint signature mentions.
package proto

type Message interface{}
