// Package analysis is a small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. The repo's
// invariants (virtual-time discipline, component boundaries, protocol
// exhaustiveness, metric naming, spill error handling) are enforced by
// the analyzers under this directory, driven by cmd/distqlint and by
// the analysistest harness in tests.
//
// The container building this repo has no module proxy access, so the
// framework deliberately uses only the standard library: packages are
// parsed with go/parser and type-checked with go/types, resolving
// in-module imports from source and substituting empty stub packages
// for everything else (see Loader). Analyzers therefore treat type
// information as best-effort and fall back to syntax where possible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments.
	Name string
	// Doc states the invariant the analyzer guards, first line short.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// A Pass presents one package to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (e.g. "repro/internal/engine").
	Path string
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg and Info carry best-effort type information: in-module
	// dependencies are fully loaded, all other imports are stubs, and
	// type errors are tolerated. Entries may be missing or Invalid.
	Pkg  *types.Package
	Info *types.Info
	// Loader lets analyzers parse sibling packages (e.g. the proto
	// registry) through the same path resolver as the package itself.
	Loader *Loader

	diags *[]Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// WaiverDirective is the comment that suppresses a diagnostic on its
// line (trailing) or on the line directly below it (leading), e.g.
//
//	ch := time.After(d) //distqlint:allow vclockdiscipline: watchdog
const WaiverDirective = "//distqlint:allow"

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics (waived findings are dropped), sorted by
// position. Analyzer errors (not findings) are reported as-is.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Loader:   pkg.loader,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = filterWaived(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// filterWaived drops diagnostics covered by a WaiverDirective comment.
func filterWaived(pkg *Package, diags []Diagnostic) []Diagnostic {
	// waived[file][line] = set of analyzer names (or "" for all).
	waived := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, WaiverDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names := strings.FieldsFunc(rest, func(r rune) bool {
					return r == ' ' || r == ',' || r == ':' || r == '\t'
				})
				m := waived[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					waived[pos.Filename] = m
				}
				if len(names) == 0 {
					m[pos.Line] = append(m[pos.Line], "")
				} else {
					// Only the analyzer names before any rationale
					// matter; unknown words are harmless.
					m[pos.Line] = append(m[pos.Line], names...)
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if lineWaives(waived, d, 0) || lineWaives(waived, d, -1) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func lineWaives(waived map[string]map[int][]string, d Diagnostic, off int) bool {
	for _, name := range waived[d.Pos.Filename][d.Pos.Line+off] {
		if name == "" || name == d.Analyzer {
			return true
		}
	}
	return false
}
