// Package protoexhaustive checks that the proto message vocabulary and
// the components' handler switches stay in sync.
//
// Every message type in repro/internal/proto carries a directive naming
// the component(s) whose handler must accept it:
//
//	//distq:handledby coordinator, engine
//	type Tick struct{ ... }
//
// The analyzer enforces, on the proto package itself:
//
//   - every gob-registered message type has a //distq:handledby
//     directive (a type nobody handles is dead protocol surface — or a
//     handler someone forgot to write);
//   - every directive names a gob-registered type (a directive on an
//     unregistered type cannot travel the wire) and only known
//     components.
//
// And on every type switch whose cases mention proto types:
//
//   - the switch is attributable to a component, either through a
//     //distq:handles <component> comment on or directly above its
//     line, or because its package's base name is a component name;
//   - the switch has a case for every proto type directed at that
//     component. Extra cases are fine (a component may opportunistically
//     understand more), missing ones are exactly the "engine silently
//     drops StartCleanup" class of bug this guards against.
package protoexhaustive

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// ProtoPath is the import path of the message vocabulary package.
const ProtoPath = "repro/internal/proto"

// Directives understood by the analyzer.
const (
	HandledByDirective = "//distq:handledby"
	HandlesDirective   = "//distq:handles"
)

// components are the names usable in directives. splithost is the split
// Router on the generator machine, whose control handler lives in
// package split.
var components = map[string]bool{
	"coordinator": true,
	"engine":      true,
	"generator":   true,
	"appserver":   true,
	"splithost":   true,
}

// Analyzer implements the protocol-exhaustiveness check.
var Analyzer = &analysis.Analyzer{
	Name: "protoexhaustive",
	Doc:  "every proto message has a handler, and every handler switch covers its component's messages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Path == ProtoPath {
		checkRegistry(pass)
		return nil
	}
	return checkSwitches(pass)
}

// A protoDecls summary of the proto package's source.
type protoDecls struct {
	handledBy map[string][]string  // type name -> handling components
	typePos   map[string]token.Pos // type name -> declaration position
	regNames  []string             // gob-registered type names, in order
	regPos    map[string]token.Pos // type name -> gob.Register position
}

func summarize(files []*ast.File) *protoDecls {
	d := &protoDecls{
		handledBy: make(map[string][]string),
		typePos:   make(map[string]token.Pos),
		regPos:    make(map[string]token.Pos),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				d.typePos[ts.Name.Name] = ts.Pos()
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if rest, ok := strings.CutPrefix(c.Text, HandledByDirective); ok {
							d.handledBy[ts.Name.Name] = splitNames(rest)
						}
					}
				}
			}
		}
		gobName, ok := analysis.ImportName(f, "encoding/gob")
		if !ok || gobName == "_" || gobName == "." {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Register" {
				return true
			}
			if x, ok := sel.X.(*ast.Ident); !ok || x.Name != gobName {
				return true
			}
			arg := call.Args[0]
			if u, ok := arg.(*ast.UnaryExpr); ok {
				arg = u.X
			}
			if cl, ok := arg.(*ast.CompositeLit); ok {
				if id, ok := cl.Type.(*ast.Ident); ok {
					if _, seen := d.regPos[id.Name]; !seen {
						d.regNames = append(d.regNames, id.Name)
						d.regPos[id.Name] = call.Pos()
					}
				}
			}
			return true
		})
	}
	return d
}

// checkRegistry runs the proto-package self-checks.
func checkRegistry(pass *analysis.Pass) {
	d := summarize(pass.Files)
	for _, name := range d.regNames {
		comps, ok := d.handledBy[name]
		if !ok {
			pass.Reportf(d.regPos[name], "proto.%s is gob-registered but carries no %s directive: no component is obliged to handle it", name, HandledByDirective)
			continue
		}
		for _, c := range comps {
			if !components[c] {
				pass.Reportf(d.typePos[name], "proto.%s: unknown component %q in %s directive", name, c, HandledByDirective)
			}
		}
	}
	var directed []string
	for name := range d.handledBy {
		directed = append(directed, name)
	}
	sort.Strings(directed)
	for _, name := range directed {
		if _, ok := d.regPos[name]; !ok {
			pass.Reportf(d.typePos[name], "proto.%s carries a %s directive but is never gob-registered: it cannot travel the wire", name, HandledByDirective)
		}
	}
}

// checkSwitches verifies every proto type switch in the package.
func checkSwitches(pass *analysis.Pass) error {
	var decls *protoDecls
	for _, file := range pass.Files {
		protoName, ok := analysis.ImportName(file, ProtoPath)
		if !ok || protoName == "_" || protoName == "." {
			continue
		}
		if decls == nil {
			pkg, err := pass.Loader.Load(ProtoPath)
			if err != nil {
				return err
			}
			decls = summarize(pkg.Files)
		}
		annotations := handlesAnnotations(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			handled := protoCases(sw, protoName)
			if len(handled) == 0 {
				return true
			}
			line := pass.Fset.Position(sw.Pos()).Line
			component := annotations[line-1]
			if component == "" {
				component = annotations[line]
			}
			if component == "" {
				base := pass.Path[strings.LastIndex(pass.Path, "/")+1:]
				if components[base] {
					component = base
				}
			}
			if component == "" {
				if len(handled) >= 2 {
					pass.Reportf(sw.Pos(), "proto message switch is not attributable to a component: add a %s <component> comment above it", HandlesDirective)
				}
				return true
			}
			var missing []string
			for name, comps := range decls.handledBy {
				for _, c := range comps {
					if c == component && !handled[name] {
						missing = append(missing, name)
					}
				}
			}
			sort.Strings(missing)
			for _, name := range missing {
				pass.Reportf(sw.Pos(), "component %s handler misses proto.%s (required by its %s directive)", component, name, HandledByDirective)
			}
			return true
		})
	}
	return nil
}

// protoCases reports the proto type names mentioned in the switch cases.
func protoCases(sw *ast.TypeSwitchStmt, protoName string) map[string]bool {
	handled := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if star, ok := expr.(*ast.StarExpr); ok {
				expr = star.X
			}
			sel, ok := expr.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == protoName {
				handled[sel.Sel.Name] = true
			}
		}
	}
	return handled
}

// handlesAnnotations maps comment line -> component for every
// //distq:handles directive in the file.
func handlesAnnotations(pass *analysis.Pass, file *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, HandlesDirective)
			if !ok || strings.HasPrefix(rest, "by") {
				// "handledby" shares the "handles" prefix; skip it.
				continue
			}
			names := splitNames(rest)
			if len(names) == 1 {
				out[pass.Fset.Position(c.Pos()).Line] = names[0]
			}
		}
	}
	return out
}

// splitNames splits a directive payload on spaces and commas.
func splitNames(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t'
	})
}
