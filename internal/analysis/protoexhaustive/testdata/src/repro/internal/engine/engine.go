// Package engine is attributable by its package name alone. Its switch
// covers Data and Ghost but forgot Tick — the "engine silently drops a
// message" class of bug.
package engine

import "repro/internal/proto"

func handle(msg any) {
	switch msg.(type) { // want `component engine handler misses proto\.Tick`
	case proto.Data:
	case *proto.Ghost:
	}
}
