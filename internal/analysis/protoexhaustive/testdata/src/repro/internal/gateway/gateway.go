// Package gateway hosts handlers behind a neutral package name, so
// attribution must come from //distq:handles directives.
package gateway

import "repro/internal/proto"

// handleApp is fully covered for appserver; the extra Tick case is
// fine (a component may opportunistically understand more).
func handleApp(msg any) {
	//distq:handles appserver
	switch msg.(type) {
	case proto.ResultCount:
	case proto.Tick:
	}
}

// route dispatches on several proto types with no directive and no
// component package name: the analyzer cannot tell which contract to
// hold it to.
func route(msg any) {
	switch msg.(type) { // want `proto message switch is not attributable to a component`
	case proto.Data:
	case proto.Tick:
	}
}

// isData classifies a single proto type; one-case switches are
// classification, not handlers, and stay unflagged.
func isData(msg any) bool {
	switch msg.(type) {
	case proto.Data:
		return true
	}
	return false
}
