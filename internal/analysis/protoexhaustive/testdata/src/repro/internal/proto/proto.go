// Package proto is a miniature message vocabulary exercising the
// registry self-checks: directives on registered types, an orphan
// registration, an unknown component, and a directive on a type that
// never travels the wire.
package proto

import "encoding/gob"

//
//distq:handledby engine
type Data struct{ N int }

//
//distq:handledby coordinator, engine
type Tick struct{}

//
//distq:handledby appserver
type ResultCount struct{ Delta uint64 }

// Orphan is registered but directed at nobody.
type Orphan struct{}

//
//distq:handledby martian
type Alien struct{} // want `proto\.Alien: unknown component "martian"`

//
//distq:handledby engine
type Ghost struct{} // want `proto\.Ghost carries a //distq:handledby directive but is never gob-registered`

func init() {
	gob.Register(Data{})
	gob.Register(Tick{})
	gob.Register(ResultCount{})
	gob.Register(Orphan{}) // want `proto\.Orphan is gob-registered but carries no //distq:handledby directive`
	gob.Register(Alien{})
}
