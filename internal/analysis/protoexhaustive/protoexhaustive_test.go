package protoexhaustive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/protoexhaustive"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", protoexhaustive.Analyzer,
		"repro/internal/proto",   // registry self-checks
		"repro/internal/engine",  // missing case, package-name attribution
		"repro/internal/gateway", // directive attribution + unattributable switch
	)
}
