// Package engine is a peer component; it must not depend on the
// harness that composes it.
package engine

import _ "repro/internal/cluster" // want `repro/internal/engine may not import repro/internal/cluster: components must not depend on the harness above them`

// Run is the engine's entry point.
func Run() {}
