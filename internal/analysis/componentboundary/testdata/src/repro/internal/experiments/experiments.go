// Package experiments alone among internal packages may drive the
// cluster harness.
package experiments

import _ "repro/internal/cluster"
