// Package spill is shared vocabulary; constructing a component from
// here bypasses the composition root.
package spill

import _ "repro/internal/engine" // want `repro/internal/spill may not import repro/internal/engine: only the cluster composition root constructs components`
