// Package cluster is the composition root: importing both components
// to construct and wire them is exactly its job, so none of these
// imports is reported.
package cluster

import (
	_ "repro/internal/coordinator"
	_ "repro/internal/engine"
)
