// Package coordinator reaches into its peer, which the boundary rule
// forbids: peers exchange proto messages over the transport, never
// state.
package coordinator

import _ "repro/internal/engine" // want `repro/internal/coordinator may not import repro/internal/engine: peer components exchange proto messages`

// Run is the coordinator's entry point.
func Run() {}
