// Command tool sits above the composition root: entry points are
// exempt from the boundary rule and may import anything.
package main

import (
	_ "repro/internal/cluster"
	_ "repro/internal/coordinator"
	_ "repro/internal/engine"
)

func main() {}
