// Package componentboundary enforces the design rule that no component
// touches another component's state except through proto messages over
// the transport. Concretely, on the import graph:
//
//   - repro/internal/coordinator and repro/internal/engine are peers:
//     neither may import the other, and neither may import the cluster
//     harness above them. They share only message/transport vocabulary
//     (proto, transport, partition, core, ...).
//   - repro/internal/cluster is the composition root: it alone among
//     internal packages may import coordinator and engine, to construct
//     and wire them.
//   - repro/internal/experiments alone among internal packages may
//     import cluster.
//   - entry points above the composition root (cmd/*, distq, examples)
//     are outside the rule.
//
// Breaking these edges is how exact-once cleanup and the 8-step
// relocation protocol silently rot: a coordinator that reaches into an
// engine's state bypasses the FIFO message order every proof in
// PROTOCOL.md leans on.
package componentboundary

import (
	"strings"

	"repro/internal/analysis"
)

const (
	coordinatorPath = "repro/internal/coordinator"
	enginePath      = "repro/internal/engine"
	clusterPath     = "repro/internal/cluster"
	experimentsPath = "repro/internal/experiments"
	internalPrefix  = "repro/internal/"
)

// Analyzer implements the component-boundary check.
var Analyzer = &analysis.Analyzer{
	Name: "componentboundary",
	Doc:  "components interact only via proto/transport messages: coordinator, engine and cluster must not reach into each other",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			target := strings.Trim(imp.Path.Value, `"`)
			if msg := forbidden(pass.Path, target); msg != "" {
				pass.Reportf(imp.Pos(), "component boundary: %s", msg)
			}
		}
	}
	return nil
}

// forbidden reports why importer may not import target, or "".
func forbidden(importer, target string) string {
	if !strings.HasPrefix(importer, internalPrefix) {
		return "" // entry points above the composition root are exempt
	}
	switch target {
	case coordinatorPath, enginePath:
		switch importer {
		case clusterPath, target:
			return "" // composition root, or the package itself
		case coordinatorPath, enginePath:
			return importer + " may not import " + target +
				": peer components exchange proto messages over the transport, never state"
		default:
			return importer + " may not import " + target +
				": only the cluster composition root constructs components"
		}
	case clusterPath:
		switch importer {
		case clusterPath, experimentsPath:
			return ""
		default:
			return importer + " may not import " + clusterPath +
				": components must not depend on the harness above them"
		}
	}
	return ""
}
