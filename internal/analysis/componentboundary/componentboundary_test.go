package componentboundary_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/componentboundary"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", componentboundary.Analyzer,
		"repro/internal/coordinator", // peer import
		"repro/internal/engine",      // harness import
		"repro/internal/spill",       // component construction outside the root
		"repro/internal/cluster",     // composition root: allowed
		"repro/internal/experiments", // may drive the harness
		"repro/cmd/tool",             // entry points are exempt
	)
}
