package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// A Resolver maps an import path to the directory holding its source,
// or reports that the path is external to the tree under analysis.
type Resolver func(importPath string) (dir string, ok bool)

// ModuleResolver resolves import paths inside one module from source:
// modPath maps to modRoot, modPath/x/y to modRoot/x/y.
func ModuleResolver(modRoot, modPath string) Resolver {
	return func(importPath string) (string, bool) {
		if importPath == modPath {
			return modRoot, true
		}
		rel, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return "", false
		}
		return filepath.Join(modRoot, filepath.FromSlash(rel)), true
	}
}

// A Package is one parsed and (best-effort) type-checked package.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects tolerated type-check errors. With external
	// imports stubbed out these are expected; they are kept only to aid
	// debugging, never printed by the driver.
	TypeErrors []error

	loader *Loader
}

// A Loader parses and type-checks packages reachable through its
// Resolver, substituting empty stub packages for external imports so
// that analysis works without a module cache or network access.
type Loader struct {
	Fset    *token.FileSet
	resolve Resolver
	pkgs    map[string]*Package
	stubs   map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a Loader resolving import paths through resolve.
func NewLoader(resolve Resolver) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		resolve: resolve,
		pkgs:    make(map[string]*Package),
		stubs:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// Load parses and type-checks the package with the given import path.
// Results are cached; test files are excluded from analysis.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := l.resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: cannot resolve %q to a directory", importPath)
	}
	files, name, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}
	pkg := &Package{
		Path:   importPath,
		Name:   name,
		Fset:   l.Fset,
		Files:  files,
		loader: l,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	// Publish before type-checking so import cycles (malformed input)
	// terminate instead of recursing forever; the checker below fills
	// pkg.Types in place.
	l.pkgs[importPath] = pkg
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
		DisableUnusedImportCheck: true,
	}
	// Check never fails fatally here: conf.Error tolerates everything,
	// and the returned package is usable even when incomplete.
	tpkg, _ := conf.Check(importPath, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir, in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, "", err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			// A stray file of another package (e.g. ignored tooling);
			// keep the majority package deterministic by first-seen.
			continue
		}
		files = append(files, f)
	}
	return files, pkgName, nil
}

// loaderImporter adapts Loader to types.Importer: in-tree packages are
// loaded from source, everything else becomes a complete empty stub so
// type-checking proceeds (with tolerated errors) without a module cache.
type loaderImporter Loader

func (li *loaderImporter) Import(importPath string) (*types.Package, error) {
	l := (*Loader)(li)
	if _, ok := l.resolve(importPath); ok && !l.loading[importPath] {
		p, err := l.Load(importPath)
		if err == nil && p.Types != nil {
			return p.Types, nil
		}
	}
	if stub, ok := l.stubs[importPath]; ok {
		return stub, nil
	}
	stub := types.NewPackage(importPath, stubName(importPath))
	stub.MarkComplete()
	l.stubs[importPath] = stub
	return stub, nil
}

// stubName guesses the package name of an external import path.
func stubName(importPath string) string {
	name := path.Base(importPath)
	if i := strings.LastIndex(name, "-"); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// ImportName reports the name under which file imports importPath:
// the alias if renamed, the default base name otherwise. ok is false
// if the file does not import the path (blank and dot imports yield
// ok=true with names "_" and ".").
func ImportName(file *ast.File, importPath string) (string, bool) {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != importPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		return stubName(p), true
	}
	return "", false
}
