package obs

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level for rendering.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "unknown"
	}
}

// Field is one typed key/value pair of a log event. Typed constructors
// (F, FInt, FUint, FErr) keep call sites free of fmt formatting; values
// are rendered once, at emit time.
type Field struct {
	Key   string
	str   string
	num   int64
	isNum bool
}

// F builds a string field.
func F(key, value string) Field { return Field{Key: key, str: value} }

// FInt builds an integer field.
func FInt(key string, v int64) Field { return Field{Key: key, num: v, isNum: true} }

// FUint builds an unsigned integer field (values beyond int64 wrap,
// which protocol sequence numbers never reach).
func FUint(key string, v uint64) Field { return Field{Key: key, num: int64(v), isNum: true} }

// FErr builds the conventional err field from an error.
func FErr(err error) Field {
	if err == nil {
		return Field{Key: "err"}
	}
	return Field{Key: "err", str: err.Error()}
}

// value renders the field's value.
func (f Field) value() string {
	if f.isNum {
		return strconv.FormatInt(f.num, 10)
	}
	return f.str
}

// LogEntry is one recorded log event, JSON-encodable for the /logs
// endpoint. Attrs is the rendered key=value tail (everything beyond the
// fixed fields), already quoted where needed.
type LogEntry struct {
	VT    vclock.Time `json:"t_vt_ns"`
	Wall  time.Time   `json:"wall"`
	Level string      `json:"level"`
	Node  string      `json:"node"`
	Kind  string      `json:"kind"`
	Event string      `json:"event"`
	Attrs string      `json:"attrs,omitempty"`
}

// String renders the entry as one key=value line.
func (e LogEntry) String() string {
	var b strings.Builder
	b.WriteString("t=")
	b.WriteString(e.VT.String())
	b.WriteString(" level=")
	b.WriteString(e.Level)
	if e.Kind != "" {
		b.WriteString(" kind=")
		b.WriteString(e.Kind)
	}
	if e.Node != "" {
		b.WriteString(" node=")
		b.WriteString(quoteIfNeeded(e.Node))
	}
	b.WriteString(" event=")
	b.WriteString(e.Event)
	if e.Attrs != "" {
		b.WriteByte(' ')
		b.WriteString(e.Attrs)
	}
	return b.String()
}

// LoggerConfig parameterizes a Logger.
type LoggerConfig struct {
	// Node / Kind identify the emitting node on every entry.
	Node string
	Kind string
	// Now supplies virtual timestamps (nil stamps zero virtual time —
	// acceptable for components without a clock, e.g. tools).
	Now func() vclock.Time
	// Min is the minimum recorded level (default LevelInfo; pass
	// LevelDebug explicitly for verbose runs).
	Min Level
	// Capacity bounds the entry ring (default 256).
	Capacity int
	// Output, when set, additionally receives every entry as one
	// key=value line. Writes are serialized by the logger.
	Output io.Writer
}

// DefaultLoggerCapacity bounds the recent-entry ring.
const DefaultLoggerCapacity = 256

// Logger is a leveled, structured, ring-buffered logger. All methods are
// safe for concurrent use; a nil *Logger is a valid no-op logger, so
// components can run unlogged without guarding call sites. Event names
// are snake_case identifiers (enforced by the obsnaming analyzer) so log
// streams from different nodes merge without spelling variants.
type Logger struct {
	node, kind string
	now        func() vclock.Time
	min        atomic.Int32

	mu      sync.Mutex
	out     io.Writer
	entries []LogEntry // ring, oldest first
	cap     int
}

// NewLogger builds a logger from cfg.
func NewLogger(cfg LoggerConfig) *Logger {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultLoggerCapacity
	}
	l := &Logger{
		node: cfg.Node,
		kind: cfg.Kind,
		now:  cfg.Now,
		out:  cfg.Output,
		cap:  cfg.Capacity,
	}
	l.min.Store(int32(cfg.Min))
	if cfg.Min == 0 {
		l.min.Store(int32(LevelInfo))
	}
	return l
}

// Enabled reports whether events at lv would be recorded. Hot paths
// guard their (variadic, hence allocating) log calls with it so a
// disabled level costs one atomic load and nothing else.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.min.Load())
}

// SetLevel changes the minimum recorded level.
func (l *Logger) SetLevel(lv Level) {
	if l != nil {
		l.min.Store(int32(lv))
	}
}

// SetOutput attaches (or replaces) the mirror writer.
func (l *Logger) SetOutput(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.out = w
	l.mu.Unlock()
}

// Debug records a debug event.
func (l *Logger) Debug(event string, fields ...Field) { l.log(LevelDebug, event, fields) }

// Info records an informational event.
func (l *Logger) Info(event string, fields ...Field) { l.log(LevelInfo, event, fields) }

// Warn records a warning.
func (l *Logger) Warn(event string, fields ...Field) { l.log(LevelWarn, event, fields) }

// Error records an error event.
func (l *Logger) Error(event string, fields ...Field) { l.log(LevelError, event, fields) }

func (l *Logger) log(lv Level, event string, fields []Field) {
	if !l.Enabled(lv) {
		return
	}
	e := LogEntry{
		Wall:  time.Now(),
		Level: lv.String(),
		Node:  l.node,
		Kind:  l.kind,
		Event: event,
		Attrs: renderFields(fields),
	}
	if l.now != nil {
		e.VT = l.now()
	}
	l.mu.Lock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.cap {
		l.entries = append(l.entries[:0], l.entries[len(l.entries)-l.cap:]...)
	}
	out := l.out
	l.mu.Unlock()
	if out != nil {
		io.WriteString(out, e.String()+"\n") //nolint:errcheck // best-effort mirror
	}
}

// Recent snapshots the newest n retained entries, oldest first (all of
// them when n <= 0).
func (l *Logger) Recent(n int) []LogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	all := l.entries
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	out := make([]LogEntry, len(all))
	copy(out, all)
	return out
}

// renderFields formats fields as a key=value tail.
func renderFields(fields []Field) string {
	if len(fields) == 0 {
		return ""
	}
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(f.value()))
	}
	return b.String()
}

// quoteIfNeeded quotes values containing whitespace, quotes, or '='
// so the key=value line stays machine-splittable.
func quoteIfNeeded(v string) string {
	if v == "" {
		return `""`
	}
	if strings.ContainsAny(v, " \t\n\"=") {
		return strconv.Quote(v)
	}
	return v
}
