package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start(SpanRelocation, "gc", vclock.Time(1*time.Second))
	sp.SetAttr("sender", "m1")
	for i, step := range RelocationSteps {
		sp.Step(step, vclock.Time(time.Duration(i+1)*time.Second))
	}
	sp.End(vclock.Time(9 * time.Second))

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	d := spans[0]
	if !d.Complete || d.Attrs["status"] != StatusOK || d.Attrs["sender"] != "m1" {
		t.Fatalf("span = %+v", d)
	}
	if len(d.Steps) != 8 {
		t.Fatalf("%d steps, want 8", len(d.Steps))
	}
	for i := 1; i < len(d.Steps); i++ {
		if d.Steps[i].VT < d.Steps[i-1].VT {
			t.Fatalf("steps not monotone: %v", d.Steps)
		}
	}
	if d.Duration() != 8*time.Second {
		t.Fatalf("duration = %v", d.Duration())
	}
	if st, ok := d.Step(StepMarkerAck); !ok || st.VT != vclock.Time(4*time.Second) {
		t.Fatalf("marker_ack step = %v %v", st, ok)
	}
	if d.WallEnd.Before(d.WallStart) {
		t.Fatal("wall times reversed")
	}
}

func TestSpanAbort(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.Start(SpanRelocation, "gc", 0)
	sp.Abort(vclock.Time(time.Second), "empty ptv")
	d := tr.Spans()[0]
	if d.Attrs["status"] != StatusAborted || d.Attrs["reason"] != "empty ptv" || !d.Complete {
		t.Fatalf("aborted span = %+v", d)
	}
	// End after Abort must not overwrite the status or end time.
	sp.End(vclock.Time(2 * time.Second))
	if d := tr.Spans()[0]; d.End != vclock.Time(time.Second) || d.Attrs["status"] != StatusAborted {
		t.Fatalf("End after Abort mutated span: %+v", d)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start(SpanSpill, "m1", vclock.Time(time.Duration(i)))
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d retained, want 3", len(spans))
	}
	if spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("wrong spans retained: %v %v", spans[0].ID, spans[2].ID)
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].ID != 5 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "n", 0)
	sp.Step("s", 0)
	sp.SetAttr("k", "v")
	sp.End(0)
	sp.Abort(0, "r")
	if tr.Spans() != nil || tr.Recent(5) != nil {
		t.Fatal("nil tracer returned spans")
	}
	if d := sp.Data(); d.Name != "" {
		t.Fatal("nil span has data")
	}
}

func TestSpanJSON(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.Start(SpanSpill, "m2", vclock.Time(time.Minute))
	sp.Step("persist", vclock.Time(time.Minute+time.Second))
	sp.End(vclock.Time(2 * time.Minute))
	buf, err := json.Marshal(tr.Spans())
	if err != nil {
		t.Fatal(err)
	}
	var back []SpanData
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Node != "m2" || back[0].Start != vclock.Time(time.Minute) || len(back[0].Steps) != 1 {
		t.Fatalf("round trip = %+v", back[0])
	}
}

// TestTracerConcurrentScrape mirrors the monitoring setup: one goroutine
// mutates spans while others snapshot. Run with -race.
func TestTracerConcurrentScrape(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Spans()
					tr.Recent(4)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		sp := tr.Start(SpanSpill, "m1", vclock.Time(time.Duration(i)))
		sp.Step("a", vclock.Time(time.Duration(i)))
		sp.SetAttr("i", "x")
		sp.End(vclock.Time(time.Duration(i + 1)))
	}
	close(stop)
	wg.Wait()
}
