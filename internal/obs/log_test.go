package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestLoggerLevels(t *testing.T) {
	l := NewLogger(LoggerConfig{Node: "m1", Kind: "engine"})
	if l.Enabled(LevelDebug) {
		t.Fatal("debug enabled by default; default minimum is info")
	}
	for _, lv := range []Level{LevelInfo, LevelWarn, LevelError} {
		if !l.Enabled(lv) {
			t.Fatalf("level %s not enabled by default", lv)
		}
	}
	l.Debug("dropped")
	l.Info("kept_info")
	l.Warn("kept_warn")
	l.Error("kept_error")
	got := l.Recent(0)
	if len(got) != 3 {
		t.Fatalf("recorded %d entries, want 3 (debug dropped): %+v", len(got), got)
	}
	if got[0].Event != "kept_info" || got[0].Level != "info" {
		t.Fatalf("first entry = %+v", got[0])
	}

	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("debug still disabled after SetLevel")
	}
	l.Debug("now_kept")
	if got := l.Recent(1); len(got) != 1 || got[0].Event != "now_kept" {
		t.Fatalf("after SetLevel: %+v", got)
	}

	l.SetLevel(LevelError)
	l.Warn("dropped_warn")
	if got := l.Recent(1); got[0].Event != "now_kept" {
		t.Fatalf("warn recorded at error minimum: %+v", got)
	}
}

func TestLoggerRingEviction(t *testing.T) {
	l := NewLogger(LoggerConfig{Node: "m1", Capacity: 4})
	for _, ev := range []string{"e1", "e2", "e3", "e4", "e5", "e6"} {
		l.Info(ev)
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	// Oldest first, newest retained.
	if got[0].Event != "e3" || got[3].Event != "e6" {
		t.Fatalf("ring contents = %+v", got)
	}
	// Recent(n) returns the newest n of the retained window.
	if tail := l.Recent(2); len(tail) != 2 || tail[0].Event != "e5" || tail[1].Event != "e6" {
		t.Fatalf("Recent(2) = %+v", tail)
	}
}

func TestLoggerEntryRendering(t *testing.T) {
	l := NewLogger(LoggerConfig{
		Node: "m1", Kind: "engine",
		Now: func() vclock.Time { return vclock.Time(90 * time.Second) },
	})
	l.Info("relocation_started",
		F("to", "m2"),
		FInt("amount", -7),
		FUint("epoch", 3),
		FErr(errors.New("boom boom")),
		F("empty", ""),
	)
	e := l.Recent(1)[0]
	if e.VT != vclock.Time(90*time.Second) {
		t.Fatalf("vt = %v", e.VT)
	}
	line := e.String()
	want := `t=1m30s level=info kind=engine node=m1 event=relocation_started to=m2 amount=-7 epoch=3 err="boom boom" empty=""`
	if line != want {
		t.Fatalf("rendered line:\n got %q\nwant %q", line, want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	for in, want := range map[string]string{
		"plain":       "plain",
		"":            `""`,
		"a b":         `"a b"`,
		"k=v":         `"k=v"`,
		`say "hi"`:    `"say \"hi\""`,
		"line\nbreak": `"line\nbreak"`,
	} {
		if got := quoteIfNeeded(in); got != want {
			t.Errorf("quoteIfNeeded(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestLoggerOutputMirror(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(LoggerConfig{Node: "gc", Kind: "coordinator", Output: &buf})
	l.Info("relocation_complete", F("from", "m1"), F("to", "m2"))
	l.Debug("dropped") // below minimum: not mirrored either
	out := buf.String()
	if !strings.Contains(out, "event=relocation_complete from=m1 to=m2") {
		t.Fatalf("mirror output = %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("mirror wrote %d lines, want 1: %q", strings.Count(out, "\n"), out)
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	l.SetLevel(LevelDebug)
	l.SetOutput(&strings.Builder{})
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x", FErr(errors.New("e")))
	if l.Recent(0) != nil {
		t.Fatal("nil logger returned entries")
	}
}

// TestLoggerConcurrency hammers one logger from writers and readers
// simultaneously — the logging path must be race-free (run with -race).
func TestLoggerConcurrency(t *testing.T) {
	l := NewLogger(LoggerConfig{Node: "m1", Capacity: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Info("tick", FInt("worker", int64(w)), FInt("i", int64(i)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for _, e := range l.Recent(8) {
					_ = e.String()
				}
				l.SetLevel(LevelInfo)
			}
		}()
	}
	wg.Wait()
	if got := l.Recent(0); len(got) != 32 {
		t.Fatalf("ring holds %d entries after churn, want 32", len(got))
	}
}
