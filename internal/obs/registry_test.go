package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("distq_test_ops_total", L("kind", "a"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if again := r.Counter("distq_test_ops_total", L("kind", "a")); again != c {
		t.Fatal("get-or-create returned a different counter")
	}
	other := r.Counter("distq_test_ops_total", L("kind", "b"))
	if other == c || other.Value() != 0 {
		t.Fatal("label sets not independent")
	}

	g := r.Gauge("distq_test_mem_bytes")
	g.Set(100)
	g.Add(-40)
	if got := g.Value(); got != 60 {
		t.Fatalf("gauge = %v, want 60", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("distq_test_latency_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 56.05 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	want := []uint64{1, 2, 1, 1} // (..0.1], (0.1..1], (1..10], (10..+Inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	// A boundary value lands in the bucket whose upper bound it equals.
	h.Observe(0.1)
	if got := h.Snapshot().Counts[0]; got != 2 {
		t.Fatalf("le=0.1 bucket after boundary observe = %d, want 2", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("distq_test_x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind conflict")
		}
	}()
	r.Gauge("distq_test_x")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Help("distq_engine_spills_total", "spill cycles executed")
	r.Counter("distq_engine_spills_total", L("kind", "local")).Add(3)
	r.Counter("distq_engine_spills_total", L("kind", "forced")).Add(1)
	r.Gauge("distq_engine_mem_bytes").Set(4096)
	h := r.Histogram("distq_engine_reloc_vseconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP distq_engine_spills_total spill cycles executed\n",
		"# TYPE distq_engine_spills_total counter\n",
		`distq_engine_spills_total{kind="forced"} 1` + "\n",
		`distq_engine_spills_total{kind="local"} 3` + "\n",
		"# TYPE distq_engine_mem_bytes gauge\ndistq_engine_mem_bytes 4096\n",
		"# TYPE distq_engine_reloc_vseconds histogram\n",
		`distq_engine_reloc_vseconds_bucket{le="1"} 1` + "\n",
		`distq_engine_reloc_vseconds_bucket{le="10"} 2` + "\n",
		`distq_engine_reloc_vseconds_bucket{le="+Inf"} 2` + "\n",
		"distq_engine_reloc_vseconds_sum 5.5\n",
		"distq_engine_reloc_vseconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Deterministic output: families sorted by name.
	if strings.Index(out, "distq_engine_mem_bytes") > strings.Index(out, "distq_engine_spills_total") {
		t.Error("families not sorted by name")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("distq_test_esc", L("detail", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `detail="a\"b\\c\nd"`) {
		t.Fatalf("bad escaping: %q", b.String())
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("distq_test_sent_total", L("type", "Data")).Add(7)
	r.Histogram("distq_test_lat", []float64{1}).Observe(0.3)
	out := r.Export()
	if len(out) != 2 {
		t.Fatalf("export has %d series, want 2", len(out))
	}
	buf, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("export must be JSON-encodable: %v", err)
	}
	var back []MetricValue
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back[1].Name != "distq_test_sent_total" || back[1].Value != 7 || back[1].Labels["type"] != "Data" {
		t.Fatalf("round trip = %+v", back[1])
	}
	if back[0].Name != "distq_test_lat" || back[0].Count != 1 || len(back[0].Buckets) != 1 {
		t.Fatalf("histogram round trip = %+v", back[0])
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("distq_test_c", L("w", "x")).Inc()
				r.Gauge("distq_test_g").Add(1)
				r.Histogram("distq_test_h", []float64{1, 2}).Observe(float64(j % 3))
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			for j := 0; j < 100; j++ {
				b.Reset()
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				r.Export()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("distq_test_c", L("w", "x")).Value(); got != 8*500 {
		t.Fatalf("counter = %v, want %d", got, 8*500)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Export() != nil {
		t.Fatal("nil registry exported series")
	}
}
