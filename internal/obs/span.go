package obs

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// Span names used across the system.
const (
	// SpanRelocation covers one 8-step relocation, recorded at the
	// coordinator from CptV send to RemapAck (or abort).
	SpanRelocation = "relocation"
	// SpanRelocationSend / SpanRelocationReceive are the engine-side
	// views of one relocation (sender extraction, receiver install).
	SpanRelocationSend    = "relocation_send"
	SpanRelocationReceive = "relocation_receive"
	// SpanSpill covers one spill cycle (attr kind = local|forced).
	SpanSpill = "spill"
	// SpanForcedSpill covers the coordinator's force-spill exchange.
	SpanForcedSpill = "forced_spill"
	// SpanCleanup covers one disk-phase cleanup run.
	SpanCleanup = "cleanup"
	// SpanCleanupWorker covers one worker's share of a parallel cleanup
	// run (attrs worker, groups, results), nested inside SpanCleanup.
	SpanCleanupWorker = "cleanup_worker"
	// SpanJoinShard covers the lifetime of one join shard worker of the
	// engine's parallel data path (attrs shard, tuples, results).
	SpanJoinShard = "join_shard"
	// SpanMembership covers one membership transition at the coordinator
	// (attr kind = join|leave, node).
	SpanMembership = "membership"
	// SpanRelocationDrain covers a coordinator-directed drain of a
	// leaving engine: the relocation protocol from Pause onward, with
	// the partition choice made by the coordinator (no CptV/PtV round).
	SpanRelocationDrain = "relocation_drain"
	// SpanPromotion covers one failover at the coordinator, from the
	// watchdog declaring the primary dead to the last remap ack.
	SpanPromotion = "promotion"
	// SpanPromotionInstall is the follower-side view of one promotion
	// step: installing its warm copies as resident state.
	SpanPromotionInstall = "promotion_install"
)

// Relocation protocol step names, in protocol order (PROTOCOL.md). A
// completed relocation span carries exactly these eight steps with
// non-decreasing virtual timestamps.
const (
	StepCptV       = "cptv_sent"    // 1: GC → sender
	StepPtV        = "ptv_received" // 2: sender → GC
	StepPause      = "pause_sent"   // 3: GC → split host
	StepMarkerAck  = "marker_ack"   // 4: marker fence acknowledged
	StepSendStates = "send_states"  // 5: GC orders the state transfer
	StepInstalled  = "installed"    // 6: receiver installed the state
	StepRemap      = "remap_sent"   // 7: GC remaps the split host
	StepRemapAck   = "remap_ack"    // 8: resume; relocation complete
)

// RelocationSteps lists the eight step names in protocol order.
var RelocationSteps = []string{
	StepCptV, StepPtV, StepPause, StepMarkerAck,
	StepSendStates, StepInstalled, StepRemap, StepRemapAck,
}

// Promotion step names, in failover order: the watchdog flags the
// primary dead, the coordinator promotes each follower, commits the new
// partition map, and remaps the split host.
const (
	StepDeathDetected = "death_detected"
	StepPromoteSent   = "promote_sent"
	StepPromoteAcked  = "promote_acked"
	StepMapCommitted  = "map_committed"
	StepRemapSent     = "promo_remap_sent"
	StepRemapAcked    = "promo_remap_acked"
)

// Span names of the distributed-trace children introduced with trace
// propagation: the coordinator's await phases and the engine-side
// acknowledgment points of the relocation protocol, plus the engine's
// checkpoint save. All are children of a root span through TraceContext.
const (
	// Coordinator await phases, one span per protocol wait.
	SpanRelocWaitPtV      = "relocation_wait_ptv"
	SpanRelocWaitMarker   = "relocation_wait_marker"
	SpanRelocWaitInstall  = "relocation_wait_installed"
	SpanRelocWaitRemapAck = "relocation_wait_remap_ack"
	// Sender-engine protocol points (cptv choice, marker fence).
	SpanRelocationCptV   = "relocation_cptv"
	SpanRelocationMarker = "relocation_marker"
	// SpanCheckpoint covers one checkpoint save on an engine.
	SpanCheckpoint = "checkpoint"
)

// Attribute values for the status attr.
const (
	StatusOK      = "ok"
	StatusAborted = "aborted"
)

// TraceContext is the compact trace identity carried on control-plane
// protocol messages: which distributed trace an operation belongs to and
// which span (on which node) is its parent. The zero value means
// "untraced"; spans started under it become roots of fresh traces.
// TraceContext is a plain value type so proto messages can embed it and
// gob-encode it without registration.
type TraceContext struct {
	TraceID uint64 `json:"trace_id,omitempty"`
	// SpanID / Node identify the parent span within its node's tracer
	// (span IDs are only unique per node).
	SpanID uint64 `json:"span_id,omitempty"`
	Node   string `json:"node,omitempty"`
}

// Valid reports whether the context names a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// StepData is one recorded protocol transition within a span.
type StepData struct {
	Name string      `json:"name"`
	VT   vclock.Time `json:"vt_ns"`
	Wall time.Time   `json:"wall"`
}

// SpanData is the immutable snapshot of a span, JSON-encodable for the
// /stats endpoint and the JSONL run reports. Virtual times are
// nanoseconds since the virtual epoch.
type SpanData struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	Node string `json:"node"`
	// TraceID groups spans of one distributed operation across nodes;
	// ParentID/ParentNode link to the parent span within the trace
	// (zero/empty for a trace root). See TraceContext.
	TraceID    uint64            `json:"trace_id,omitempty"`
	ParentID   uint64            `json:"parent_id,omitempty"`
	ParentNode string            `json:"parent_node,omitempty"`
	Start      vclock.Time       `json:"start_vt_ns"`
	End        vclock.Time       `json:"end_vt_ns"`
	WallStart  time.Time         `json:"wall_start"`
	WallEnd    time.Time         `json:"wall_end"`
	Complete   bool              `json:"complete"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Steps      []StepData        `json:"steps,omitempty"`
}

// Duration is the span's virtual duration (zero while incomplete).
func (d SpanData) Duration() time.Duration {
	if !d.Complete {
		return 0
	}
	return d.End.Sub(d.Start)
}

// Step returns the named step and whether it was recorded.
func (d SpanData) Step(name string) (StepData, bool) {
	for _, s := range d.Steps {
		if s.Name == name {
			return s, true
		}
	}
	return StepData{}, false
}

// clone deep-copies the snapshot.
func (d SpanData) clone() SpanData {
	out := d
	if d.Attrs != nil {
		out.Attrs = make(map[string]string, len(d.Attrs))
		for k, v := range d.Attrs {
			out.Attrs[k] = v
		}
	}
	out.Steps = append([]StepData(nil), d.Steps...)
	return out
}

// Tracer records spans into a bounded ring of recent spans. All methods
// are safe for concurrent use; a nil *Tracer is a valid no-op tracer
// (Start returns a nil span whose methods no-op), so components can run
// untraced without guarding every call site.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	spans  []*Span // oldest first; active and finished
	nextID uint64
}

// DefaultTracerCapacity bounds the recent-span ring.
const DefaultTracerCapacity = 256

// NewTracer returns a tracer keeping up to capacity recent spans
// (DefaultTracerCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{cap: capacity}
}

// Start opens a root span at virtual time vt: it begins a fresh trace
// whose ID is derived from the node name and the span's sequence number
// (deterministic, cluster-unique without a wall clock or randomness).
// The returned span is mutated by its owner (typically a node's serial
// handler goroutine) and snapshotted concurrently through the tracer.
func (t *Tracer) Start(name, node string, vt vclock.Time) *Span {
	return t.StartChild(name, node, vt, TraceContext{})
}

// StartChild opens a span under a parent trace context, as propagated on
// a control-plane protocol message. A zero (invalid) parent makes the
// span the root of a fresh trace, so call sites need not guard against
// untraced messages.
func (t *Tracer) StartChild(name, node string, vt vclock.Time, parent TraceContext) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	d := SpanData{
		ID:        t.nextID,
		Name:      name,
		Node:      node,
		Start:     vt,
		WallStart: time.Now(),
	}
	if parent.Valid() {
		d.TraceID = parent.TraceID
		d.ParentID = parent.SpanID
		d.ParentNode = parent.Node
	} else {
		d.TraceID = traceID(node, t.nextID)
	}
	s := &Span{t: t, d: d}
	t.spans = append(t.spans, s)
	if len(t.spans) > t.cap {
		t.spans = append(t.spans[:0], t.spans[len(t.spans)-t.cap:]...)
	}
	return s
}

// traceID derives a cluster-unique trace identifier from the opening
// node's name (FNV-1a hashed into the high bits) and the span's
// per-node sequence number. Never zero: zero means "untraced".
func traceID(node string, seq uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	id := (h << 20) ^ seq
	if id == 0 {
		id = 1
	}
	return id
}

// Spans snapshots every retained span, oldest first.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.d.clone()
	}
	return out
}

// Recent snapshots the newest n retained spans, oldest first.
func (t *Tracer) Recent(n int) []SpanData {
	all := t.Spans()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Span is one in-flight or finished operation. Mutating methods are
// synchronized through the owning tracer so concurrent snapshot reads
// (monitoring scrapes) are race-free. All methods no-op on a nil span.
type Span struct {
	t *Tracer
	d SpanData
}

// Context returns the trace context that makes later spans children of
// this one; stamp it on the protocol message that hands the operation to
// another node. A nil span returns the zero (untraced) context.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return TraceContext{TraceID: s.d.TraceID, SpanID: s.d.ID, Node: s.d.Node}
}

// Step records a protocol transition at virtual time vt.
func (s *Span) Step(name string, vt vclock.Time) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.d.Steps = append(s.d.Steps, StepData{Name: name, VT: vt, Wall: time.Now()})
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.d.Attrs == nil {
		s.d.Attrs = make(map[string]string)
	}
	s.d.Attrs[key] = value
}

// End closes the span at virtual time vt with status ok (unless an
// earlier Abort set a status).
func (s *Span) End(vt vclock.Time) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.d.Complete {
		return
	}
	s.d.End = vt
	s.d.WallEnd = time.Now()
	s.d.Complete = true
	if s.d.Attrs == nil {
		s.d.Attrs = make(map[string]string)
	}
	if _, ok := s.d.Attrs["status"]; !ok {
		s.d.Attrs["status"] = StatusOK
	}
}

// Abort closes the span at vt marking it aborted with a reason.
func (s *Span) Abort(vt vclock.Time, reason string) {
	if s == nil {
		return
	}
	s.SetAttr("status", StatusAborted)
	if reason != "" {
		s.SetAttr("reason", reason)
	}
	s.End(vt)
}

// Data snapshots the span's current state.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.d.clone()
}
