package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the complete /metrics document for a
// representative registry — family ordering, HELP/TYPE lines, label
// rendering and escaping, cumulative histogram buckets with the +Inf
// bucket, and float formatting — so any drift in the exposition format
// shows up as a full-document diff, not a missing substring.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("distq_engine_spills_total", "spill cycles executed")
	r.Counter("distq_engine_spills_total", L("kind", "local")).Add(3)
	r.Counter("distq_engine_spills_total", L("kind", "forced")).Inc()
	r.Help("distq_engine_mem_bytes", "resident state size")
	r.Gauge("distq_engine_mem_bytes").Set(4096)
	r.Gauge("distq_engine_group_resident_bytes", L("group", "7")).Set(1.5)
	r.Counter("distq_engine_esc_total", L("detail", "a\"b\\c\nd")).Inc()
	h := r.Histogram("distq_engine_reloc_vseconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := `# TYPE distq_engine_esc_total counter
distq_engine_esc_total{detail="a\"b\\c\nd"} 1
# TYPE distq_engine_group_resident_bytes gauge
distq_engine_group_resident_bytes{group="7"} 1.5
# HELP distq_engine_mem_bytes resident state size
# TYPE distq_engine_mem_bytes gauge
distq_engine_mem_bytes 4096
# TYPE distq_engine_reloc_vseconds histogram
distq_engine_reloc_vseconds_bucket{le="1"} 1
distq_engine_reloc_vseconds_bucket{le="10"} 2
distq_engine_reloc_vseconds_bucket{le="+Inf"} 3
distq_engine_reloc_vseconds_sum 55.5
distq_engine_reloc_vseconds_count 3
# HELP distq_engine_spills_total spill cycles executed
# TYPE distq_engine_spills_total counter
distq_engine_spills_total{kind="forced"} 1
distq_engine_spills_total{kind="local"} 3
`
	if got := b.String(); got != golden {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestWritePrometheusStableUnderConcurrentUpdates renders the exposition
// while every series keeps mutating and new label sets appear; each
// rendered document must stay well-formed (every sample line belongs to
// a declared family) even mid-churn. Run with -race.
func TestWritePrometheusStableUnderConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			labels := []Label{L("w", string(rune('a'+w)))}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("distq_engine_ops_total", labels...).Inc()
				r.Gauge("distq_engine_mem_bytes", labels...).Set(float64(i))
				r.Histogram("distq_engine_lat_vseconds", []float64{1, 10}, labels...).Observe(float64(i % 12))
			}
		}(w)
	}

	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		doc := b.String()
		if doc == "" {
			// First scrapes can race the writers' first registrations.
			continue
		}
		declared := map[string]bool{}
		for _, line := range strings.Split(strings.TrimSuffix(doc, "\n"), "\n") {
			if line == "" {
				t.Fatal("blank line in exposition")
			}
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				declared[strings.Fields(rest)[0]] = true
				continue
			}
			if strings.HasPrefix(line, "# HELP ") {
				continue
			}
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suffix); ok && declared[cut] {
					base = cut
					break
				}
			}
			if !declared[base] {
				t.Fatalf("sample %q has no preceding TYPE declaration in:\n%s", line, b.String())
			}
		}
	}
	close(stop)
	writers.Wait()
}
