package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vclock"
)

func vt(d time.Duration) vclock.Time { return vclock.Time(d) }

// relocationSpans simulates the per-node tracers of one relocation:
// the coordinator's root + await phases, the sender's protocol spans,
// and the receiver's install span — then merges the dumps, as a
// cluster Result or a set of /stats scrapes would.
func relocationSpans(t *testing.T) []obs.SpanData {
	t.Helper()
	gc := obs.NewTracer(0)
	m1 := obs.NewTracer(0)
	m2 := obs.NewTracer(0)

	root := gc.Start(obs.SpanRelocation, "gc", vt(10*time.Second))
	rctx := root.Context()
	for _, name := range []string{
		obs.SpanRelocWaitPtV, obs.SpanRelocWaitMarker,
		obs.SpanRelocWaitInstall, obs.SpanRelocWaitRemapAck,
	} {
		p := gc.StartChild(name, "gc", vt(11*time.Second), rctx)
		p.End(vt(12 * time.Second))
	}

	// Sender-side children, parented by the context the coordinator
	// stamped on CptV / Pause / SendStates.
	for _, name := range []string{
		obs.SpanRelocationCptV, obs.SpanRelocationMarker, obs.SpanRelocationSend,
	} {
		s := m1.StartChild(name, "m1", vt(13*time.Second), rctx)
		s.End(vt(14 * time.Second))
	}
	// Receiver install, parented by the context forwarded on StateTransfer.
	recv := m2.StartChild(obs.SpanRelocationReceive, "m2", vt(14*time.Second), rctx)
	recv.End(vt(15 * time.Second))

	root.End(vt(16 * time.Second))
	return append(append(gc.Spans(), m1.Spans()...), m2.Spans()...)
}

func TestBuildReassemblesRelocation(t *testing.T) {
	trees := Build(relocationSpans(t))
	if len(trees) != 1 {
		t.Fatalf("built %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Root.Span.Name != obs.SpanRelocation || tree.Root.Span.Node != "gc" {
		t.Fatalf("root = %+v", tree.Root.Span)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans = %d, want 0", len(tree.Orphans))
	}
	if got := tree.Root.Descendants(); got != 8 {
		t.Fatalf("root has %d descendants, want 8", got)
	}
	if got := tree.Spans(); got != 9 {
		t.Fatalf("tree spans = %d, want 9", got)
	}
	wantNodes := []string{"gc", "m1", "m2"}
	gotNodes := tree.Nodes()
	if len(gotNodes) != len(wantNodes) {
		t.Fatalf("nodes = %v", gotNodes)
	}
	for i, n := range wantNodes {
		if gotNodes[i] != n {
			t.Fatalf("nodes = %v, want %v", gotNodes, wantNodes)
		}
	}
	// Every child attributes to the node whose tracer recorded it.
	byName := map[string]string{}
	for _, c := range tree.Root.Children {
		byName[c.Span.Name] = c.Span.Node
	}
	for name, node := range map[string]string{
		obs.SpanRelocWaitPtV:      "gc",
		obs.SpanRelocationCptV:    "m1",
		obs.SpanRelocationSend:    "m1",
		obs.SpanRelocationReceive: "m2",
	} {
		if byName[name] != node {
			t.Errorf("child %s on node %q, want %q", name, byName[name], node)
		}
	}
	// Children ordered by virtual start (gc phases at 11s precede the
	// engine spans at 13s+).
	if first := tree.Root.Children[0].Span; first.Start != vt(11*time.Second) {
		t.Fatalf("first child starts at %v", first.Start)
	}
	if last := tree.Root.Children[len(tree.Root.Children)-1].Span; last.Name != obs.SpanRelocationReceive {
		t.Fatalf("last child = %s", last.Name)
	}
}

func TestBuildSeparatesTracesAndUntraced(t *testing.T) {
	// One tracer per node, as in the real cluster: trace IDs derive from
	// the node name and the per-node span sequence, so two roots on the
	// same tracer start two distinct traces.
	gc := obs.NewTracer(0)
	m1 := obs.NewTracer(0)
	ra := gc.Start(obs.SpanRelocation, "gc", vt(2*time.Second))
	m1.StartChild(obs.SpanRelocationCptV, "m1", vt(3*time.Second), ra.Context())
	gc.Start(obs.SpanForcedSpill, "gc", vt(1*time.Second))
	// Hand-built span without a trace: its own single-span tree.
	untraced := obs.SpanData{Name: obs.SpanCleanup, Node: "m1", Start: vt(4 * time.Second)}

	trees := Build(append(append(gc.Spans(), m1.Spans()...), untraced))
	if len(trees) != 3 {
		t.Fatalf("built %d trees, want 3", len(trees))
	}
	// Ordered by earliest root start: forced spill (1s), relocation (2s),
	// untraced cleanup (4s).
	if trees[0].Root.Span.Name != obs.SpanForcedSpill ||
		trees[1].Root.Span.Name != obs.SpanRelocation ||
		trees[2].Root.Span.Name != obs.SpanCleanup {
		t.Fatalf("tree order = %s, %s, %s",
			trees[0].Root.Span.Name, trees[1].Root.Span.Name, trees[2].Root.Span.Name)
	}
	if trees[2].TraceID != 0 || len(trees[1].Root.Children) != 1 {
		t.Fatalf("untraced id=%d, reloc children=%d", trees[2].TraceID, len(trees[1].Root.Children))
	}

	reloc := ByName(trees, obs.SpanRelocation)
	if len(reloc) != 1 || reloc[0] != trees[1] {
		t.Fatalf("ByName(relocation) = %v", reloc)
	}
	if n := reloc[0].Find(obs.SpanRelocationCptV); n == nil || n.Span.Node != "m1" {
		t.Fatalf("Find(cptv) = %+v", n)
	}
	if reloc[0].Find("no_such_span") != nil {
		t.Fatal("Find invented a span")
	}
}

func TestBuildOrphansAndRootPromotion(t *testing.T) {
	gc := obs.NewTracer(0)
	m1 := obs.NewTracer(0)
	root := gc.Start(obs.SpanRelocation, "gc", vt(1*time.Second))
	child := m1.StartChild(obs.SpanRelocationSend, "m1", vt(2*time.Second), root.Context())
	// A span whose parent (the send) is NOT in the dump below: orphan.
	grand := m1.StartChild(obs.SpanRelocationReceive, "m2", vt(3*time.Second), child.Context())
	_ = grand

	// Dump missing the middle span — as if m1's ring evicted it.
	var spans []obs.SpanData
	for _, s := range append(gc.Spans(), m1.Spans()...) {
		if s.Name == obs.SpanRelocationSend {
			continue
		}
		spans = append(spans, s)
	}
	trees := Build(spans)
	if len(trees) != 1 {
		t.Fatalf("built %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Root.Span.Name != obs.SpanRelocation || len(tree.Orphans) != 1 {
		t.Fatalf("root=%s orphans=%d", tree.Root.Span.Name, len(tree.Orphans))
	}
	if tree.Orphans[0].Span.Name != obs.SpanRelocationReceive {
		t.Fatalf("orphan = %s", tree.Orphans[0].Span.Name)
	}
	if tree.Spans() != 2 {
		t.Fatalf("spans = %d", tree.Spans())
	}

	// No root at all (coordinator not scraped): earliest orphan promoted.
	var noRoot []obs.SpanData
	for _, s := range m1.Spans() {
		noRoot = append(noRoot, s)
	}
	trees = Build(noRoot)
	if len(trees) != 1 || trees[0].Root == nil {
		t.Fatalf("trees = %+v", trees)
	}
	if trees[0].Root.Span.Name != obs.SpanRelocationSend {
		t.Fatalf("promoted root = %s", trees[0].Root.Span.Name)
	}
	// The grand-child's parent IS present here, so it attaches.
	if len(trees[0].Root.Children) != 1 || len(trees[0].Orphans) != 0 {
		t.Fatalf("promoted tree: children=%d orphans=%d", len(trees[0].Root.Children), len(trees[0].Orphans))
	}
}

func TestRender(t *testing.T) {
	trees := Build(relocationSpans(t))
	out := trees[0].Render()
	if !strings.HasPrefix(out, "trace ") {
		t.Fatalf("render = %q", out)
	}
	for _, want := range []string{
		"(9 spans, nodes: gc,m1,m2)",
		"\n  relocation @gc [10s → 16s] ok",
		"\n    relocation_receive @m2 [14s → 15s] ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(orphaned)") {
		t.Errorf("complete trace rendered orphans:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 10 {
		t.Errorf("render has %d lines, want 10:\n%s", got, out)
	}
}
