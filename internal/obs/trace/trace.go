// Package trace reassembles distributed traces from per-node span
// dumps. Each node's obs.Tracer records only its own spans; the trace
// context propagated on control-plane protocol messages (obs.TraceContext)
// stamps every span with a cluster-unique TraceID and its parent's
// identity, so gathering the spans of all nodes — a cluster Result's
// merged Spans, or the /stats scrapes of every monitor endpoint — is
// enough to rebuild each adaptation as one causal tree: the coordinator's
// decision span on top, its await phases and the engines' cptv / marker /
// transfer / install spans beneath it.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Node is one span within a reassembled trace tree.
type Node struct {
	Span     obs.SpanData
	Children []*Node
}

// Descendants counts the spans below this node.
func (n *Node) Descendants() int {
	total := 0
	for _, c := range n.Children {
		total += 1 + c.Descendants()
	}
	return total
}

// Walk visits the node and every descendant, parents before children.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Tree is one reassembled trace.
type Tree struct {
	TraceID uint64
	Root    *Node
	// Orphans are spans of this trace whose recorded parent span was not
	// in the input (evicted from a tracer ring, or a node not scraped).
	// They are still part of the trace but cannot be attached.
	Orphans []*Node
}

// Spans counts every span in the tree, root and orphans included.
func (t *Tree) Spans() int {
	n := 1 + t.Root.Descendants()
	for _, o := range t.Orphans {
		n += 1 + o.Descendants()
	}
	return n
}

// Nodes lists the distinct cluster nodes contributing spans, sorted.
func (t *Tree) Nodes() []string {
	seen := map[string]bool{}
	visit := func(n *Node) { seen[n.Span.Node] = true }
	t.Root.Walk(visit)
	for _, o := range t.Orphans {
		o.Walk(visit)
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// spanKey identifies a span within a trace; span IDs are per-node
// sequence numbers, so the node disambiguates.
type spanKey struct {
	node string
	id   uint64
}

// Build groups spans by TraceID and links each trace into a tree.
// Trees are returned ordered by their earliest span's virtual start;
// children within a node are ordered the same way. Spans without a
// TraceID (recorded before trace propagation, or hand-built) each form
// a single-span tree.
func Build(spans []obs.SpanData) []*Tree {
	byTrace := make(map[uint64][]obs.SpanData)
	var untraced []obs.SpanData
	for _, s := range spans {
		if s.TraceID == 0 {
			untraced = append(untraced, s)
			continue
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}

	var trees []*Tree
	for id, group := range byTrace {
		trees = append(trees, link(id, group))
	}
	for _, s := range untraced {
		trees = append(trees, &Tree{Root: &Node{Span: s}})
	}
	sort.SliceStable(trees, func(i, j int) bool {
		return trees[i].Root.Span.Start < trees[j].Root.Span.Start
	})
	return trees
}

// link assembles one trace's spans into root + orphans.
func link(id uint64, spans []obs.SpanData) *Tree {
	nodes := make(map[spanKey]*Node, len(spans))
	ordered := make([]*Node, 0, len(spans))
	for _, s := range spans {
		n := &Node{Span: s}
		nodes[spanKey{s.Node, s.ID}] = n
		ordered = append(ordered, n)
	}
	t := &Tree{TraceID: id}
	for _, n := range ordered {
		s := n.Span
		if s.ParentID == 0 && s.ParentNode == "" {
			if t.Root == nil {
				t.Root = n
			} else {
				t.Orphans = append(t.Orphans, n)
			}
			continue
		}
		if p, ok := nodes[spanKey{s.ParentNode, s.ParentID}]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			t.Orphans = append(t.Orphans, n)
		}
	}
	if t.Root == nil && len(t.Orphans) > 0 {
		// No true root survived the ring: promote the earliest orphan so
		// the tree still renders.
		sort.SliceStable(t.Orphans, func(i, j int) bool {
			return t.Orphans[i].Span.Start < t.Orphans[j].Span.Start
		})
		t.Root, t.Orphans = t.Orphans[0], t.Orphans[1:]
	}
	sortChildren(t.Root)
	for _, o := range t.Orphans {
		sortChildren(o)
	}
	return t
}

func sortChildren(n *Node) {
	if n == nil {
		return
	}
	sort.SliceStable(n.Children, func(i, j int) bool {
		a, b := n.Children[i].Span, n.Children[j].Span
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Node < b.Node
	})
	for _, c := range n.Children {
		sortChildren(c)
	}
}

// ByName filters trees down to those whose root span bears name.
func ByName(trees []*Tree, name string) []*Tree {
	var out []*Tree
	for _, t := range trees {
		if t.Root != nil && t.Root.Span.Name == name {
			out = append(out, t)
		}
	}
	return out
}

// Find returns the first node in the tree bearing name (depth-first),
// or nil.
func (t *Tree) Find(name string) *Node {
	var found *Node
	visit := func(n *Node) {
		if found == nil && n.Span.Name == name {
			found = n
		}
	}
	t.Root.Walk(visit)
	for _, o := range t.Orphans {
		if found == nil {
			o.Walk(visit)
		}
	}
	return found
}

// Render formats the tree as indented text, one span per line with its
// node, virtual interval, status, and step count — the human view of one
// adaptation's causal story.
func (t *Tree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x (%d spans, nodes: %s)\n", t.TraceID, t.Spans(), strings.Join(t.Nodes(), ","))
	renderNode(&b, t.Root, 1)
	for _, o := range t.Orphans {
		b.WriteString("  (orphaned)\n")
		renderNode(&b, o, 2)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, depth int) {
	s := n.Span
	status := "open"
	if s.Complete {
		status = s.Attrs["status"]
		if status == "" {
			status = obs.StatusOK
		}
	}
	fmt.Fprintf(b, "%s%s @%s [%s → %s] %s", strings.Repeat("  ", depth), s.Name, s.Node, s.Start, s.End, status)
	if len(s.Steps) > 0 {
		fmt.Fprintf(b, " steps=%d", len(s.Steps))
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
}
