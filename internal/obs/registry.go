// Package obs is the system's observability layer: a concurrency-safe
// metrics registry (counters, gauges, histograms) with Prometheus
// text-format exposition, and a span tracer recording each adaptation —
// relocations with their 8 protocol steps, spills, cleanups — stamped
// with both virtual and wall time.
//
// Every node (coordinator, engine, generator, application server) owns
// one Registry and one Tracer. Metric names follow the scheme
// distq_<node_kind>_<name>, e.g. distq_engine_spills_total; series of
// one name are distinguished by labels. Histograms are unit-agnostic:
// transport latencies observe wall seconds, adaptation durations observe
// virtual seconds (suffix _vseconds).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Default bucket layouts.
var (
	// LatencyBuckets suits wall-clock send/IO latencies (seconds).
	LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2.5, 10}
	// VirtualDurationBuckets suits adaptation durations in virtual
	// seconds (relocations span virtual seconds to minutes).
	VirtualDurationBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300}
)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveDuration records a duration in seconds. For virtual durations
// the caller passes the virtual time.Duration (vclock durations convert
// with Sub); the unit convention lives in the metric name.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, +Inf excluded
	Counts []uint64  // per-bucket (non-cumulative), len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
	return s
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name    string
	kind    metricKind
	help    string
	buckets []float64
	series  map[string]*series // keyed by canonical label rendering
}

// Registry holds a node's metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use. Get-or-create
// lookups take a lock, so hot paths should cache the returned metric.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Help sets the HELP string emitted for a metric name.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, series: make(map[string]*series)}
	}
}

// lookup get-or-creates the series for (name, labels) with the given
// kind. It panics on a kind conflict: metric names are compile-time
// constants, so a conflict is a programming error.
func (r *Registry) lookup(name string, kind metricKind, buckets []float64, labels []Label) *series {
	canon := canonicalLabels(labels)
	key := renderLabels(canon)

	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			if f.kind != kind {
				panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
			}
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	} else if len(f.series) == 0 && f.kind != kind {
		// Created by Help before first use: adopt the kind.
		f.kind = kind
		f.buckets = buckets
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: canon}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			b := f.buckets
			s.h = &Histogram{bounds: append([]float64(nil), b...), counts: make([]uint64, len(b)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter get-or-creates a counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil, labels).c
}

// Gauge get-or-creates a gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil, labels).g
}

// Histogram get-or-creates a histogram. The bucket layout of the first
// creation wins for the whole family.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return r.lookup(name, kindHistogram, buckets, labels).h
}

// canonicalLabels copies and sorts labels by key.
func canonicalLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// renderLabels formats {k="v",...} (empty string for no labels).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderLabelsWith appends one extra pair (used for histogram le labels).
func renderLabelsWith(labels []Label, key, value string) string {
	all := append(append([]Label(nil), labels...), Label{Key: key, Value: value})
	return renderLabels(all)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name then label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %s\n", name, k, formatFloat(s.c.Value()))
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, k, formatFloat(s.g.Value()))
			case kindHistogram:
				snap := s.h.Snapshot()
				var cum uint64
				for i, ub := range snap.Bounds {
					cum += snap.Counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name, renderLabelsWith(s.labels, "le", formatFloat(ub)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, renderLabelsWith(s.labels, "le", "+Inf"), snap.Count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, k, formatFloat(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, k, snap.Count)
			}
		}
	}
	r.mu.RUnlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// Bucket is one histogram bucket in an export. The implicit +Inf bucket
// is omitted (it would not survive JSON encoding); its count is the
// series Count minus the finite buckets' sum.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"` // non-cumulative
}

// MetricValue is one exported series (JSONL run reports).
type MetricValue struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`           // counter/gauge value; histogram sum
	Count   uint64            `json:"count,omitempty"` // histogram observation count
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Export snapshots every series for machine-readable reports, sorted by
// name then label set.
func (r *Registry) Export() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []MetricValue
	for _, f := range r.families {
		for _, s := range f.series {
			mv := MetricValue{Name: f.name, Kind: f.kind.String()}
			if len(s.labels) > 0 {
				mv.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					mv.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				mv.Value = s.c.Value()
			case kindGauge:
				mv.Value = s.g.Value()
			case kindHistogram:
				snap := s.h.Snapshot()
				mv.Value = snap.Sum
				mv.Count = snap.Count
				for i, ub := range snap.Bounds {
					mv.Buckets = append(mv.Buckets, Bucket{UpperBound: ub, Count: snap.Counts[i]})
				}
			}
			out = append(out, mv)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
	})
	return out
}
