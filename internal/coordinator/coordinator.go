// Package coordinator implements the global coordinator (GC): it collects
// light-weight statistics from every query engine, evaluates the
// configured adaptation strategy on its load-balancing timer, and
// orchestrates the 8-step state relocation protocol and the active-disk
// forced spills (paper §2, §4.1, §5).
//
// Like the engines, the coordinator is event-driven and single-threaded:
// all messages (including its own timer) arrive through the transport's
// serial handler.
//
// The coordinator assumes nothing about delivery: with RelocTimeout
// set, every await phase of the relocation protocol is guarded by a
// virtual-time timeout that retries the pending (idempotent) step with
// exponential backoff and, once retries are exhausted, rolls the
// relocation back through the RelocAbort path — the pre-relocation
// partition map is restored and the paused partitions are released, so
// no relocation can hang past its deadline. (On loss-free transports
// the deadlines stay disarmed — see Config.RelocTimeout.)
// A heartbeat watchdog declares engines silent past
// HeartbeatTimeout dead: their partitions are paused at the split host
// (tuples buffer instead of vanishing into a dead link) and they are
// excluded from adaptation until they re-register, at which point the
// buffered partitions are resumed. See PROTOCOL.md "Failure model".
package coordinator

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Config parameterizes the coordinator.
type Config struct {
	Node partition.NodeID
	// SplitHost is the node running the split operators (the stream
	// generator machine); Pause/Remap messages go there.
	SplitHost partition.NodeID
	// Engines are the query engine nodes under management.
	Engines []partition.NodeID
	// Strategy decides relocations and forced spills.
	Strategy core.Strategy
	// Map is the master partition map; relocations update it.
	Map *partition.Map
	// LBInterval is the lb_timer period (virtual).
	LBInterval time.Duration
	// RelocTimeout, when positive, arms a virtual-time deadline on each
	// await phase of the relocation protocol; it doubles on every
	// retry. Zero disables the deadlines (like HeartbeatTimeout, the
	// hardening is opt-in): the in-process transport cannot lose
	// messages, and the scaled clock keeps running while a backlogged
	// peer churns through its queue, so on a loss-free deployment a
	// virtual deadline only races healthy-but-slow engines. Enable it
	// wherever messages can actually vanish (the chaos suite does).
	RelocTimeout time.Duration
	// RelocMaxRetries bounds how often a pending step is re-sent before
	// the coordinator escalates (abort, or give-up for committed
	// phases). Defaults to 2; negative disables retries.
	RelocMaxRetries int
	// HeartbeatTimeout, when positive, arms the engine watchdog: an
	// engine silent (no StatsReport/Hello) for longer is declared dead.
	HeartbeatTimeout time.Duration
	// Replicate enables per-group replication: the coordinator assigns
	// every partition group a follower engine, broadcasts the
	// assignment as a ReplicaMap on each lb tick, and — when the
	// watchdog declares a primary dead — promotes the followers
	// (Promote/PromoteAck) and commits a new partition map instead of
	// parking the groups until a checkpoint-restore.
	Replicate bool
	// OnError, when set, receives every error surfaced by the
	// coordinator's handler (in addition to the error counter and log),
	// letting the harness fail loudly on e.g. a dead appserver link.
	OnError func(error)
}

// MemberState is the coordinator's membership view of an engine.
type MemberState int32

// Membership states. Statically configured engines start Active; a
// dynamically admitted engine is Joining until its first StatsReport;
// a departing engine is Draining until it owns no partitions, then
// Left (terminal — the name cannot rejoin). Dead/alive, the watchdog's
// view, is orthogonal to membership.
const (
	MemberActive MemberState = iota
	MemberJoining
	MemberDraining
	MemberLeft
)

// String names the membership state for snapshots and logs.
func (s MemberState) String() string {
	switch s {
	case MemberActive:
		return "active"
	case MemberJoining:
		return "joining"
	case MemberDraining:
		return "draining"
	case MemberLeft:
		return "left"
	default:
		return "unknown"
	}
}

// engineInfo is the coordinator's view of one engine.
type engineInfo struct {
	last       proto.StatsReport
	haveReport bool
	prevOutput uint64 // output at the previous strategy evaluation
	memSeries  *stats.Series
	lastSeen   vclock.Time
	alive      atomic.Bool
	// state is the engine's MemberState (atomic: accessors read it off
	// the handler thread).
	state atomic.Int32
	// diedAt is when the watchdog last declared the engine dead; the
	// promotion span starts there so its duration measures true failover
	// latency.
	diedAt vclock.Time
	// lastReplVersion is the ReplicaMap version from the engine's latest
	// stats report; the replication-settled fence compares it against
	// the broadcast version.
	lastReplVersion atomic.Uint64
	// memberSpan is the open membership span of an in-flight join
	// admission or leave drain (handler-thread only).
	memberSpan *obs.Span
}

// relocPhase tracks the protocol step of the in-flight adaptation,
// including the rollback phases of an aborting relocation.
type relocPhase int

const (
	relocIdle relocPhase = iota
	relocWaitPtV
	relocWaitMarker
	relocWaitInstalled
	relocWaitRemapAck
	forceWaitSpillDone
	// abortWaitReceiver awaits the receiver's RelocAbortAck, which
	// resolves whether the transferred state was installed (commit
	// forward) or not (roll back through the sender).
	abortWaitReceiver
	// abortWaitSender awaits the sender's RelocAbortAck (state
	// reinstalled locally, relocation mode cleared).
	abortWaitSender
	// abortWaitResume awaits the split host's RemapAck for the restore
	// Remap that re-enables the paused partitions under the old owner.
	abortWaitResume
	// promoWaitAck awaits a follower's PromoteAck during a failover;
	// promoWaitRemap awaits the split host's RemapAck for a promoted
	// step. Both commit forward: escalation skips the unresponsive step,
	// never rolls back.
	promoWaitAck
	promoWaitRemap
)

// phaseName labels phases for events and errors.
func (p relocPhase) String() string {
	switch p {
	case relocIdle:
		return "idle"
	case relocWaitPtV:
		return "wait_ptv"
	case relocWaitMarker:
		return "wait_marker"
	case relocWaitInstalled:
		return "wait_installed"
	case relocWaitRemapAck:
		return "wait_remap_ack"
	case forceWaitSpillDone:
		return "wait_spill_done"
	case abortWaitReceiver:
		return "abort_wait_receiver"
	case abortWaitSender:
		return "abort_wait_sender"
	case abortWaitResume:
		return "abort_wait_resume"
	case promoWaitAck:
		return "promo_wait_ack"
	case promoWaitRemap:
		return "promo_wait_remap"
	default:
		return "unknown"
	}
}

// resumeState tracks one pending partition resume (a revived engine's
// partitions being released at the split host).
type resumeState struct {
	node     partition.NodeID
	parts    []partition.ID
	attempts int
}

// resumeMaxRetries bounds lb-tick re-sends of a resume Remap before it
// is abandoned with an unresolved error.
const resumeMaxRetries = 10

// demoteState tracks one pending demotion: a revived engine dropping
// groups that were failed over away from it while it was presumed
// dead. Retried on the lb tick like resumes.
type demoteState struct {
	node     partition.NodeID
	parts    []partition.ID
	attempts int
}

// demoteMaxRetries bounds lb-tick re-sends of a Demote before it is
// abandoned with an unresolved error.
const demoteMaxRetries = 10

// promoStep is one follower's share of a failover.
type promoStep struct {
	to     partition.NodeID
	groups []partition.ID
	acked  bool
}

// promoState tracks one in-flight failover: the dead primary, when the
// watchdog flagged it, and the per-follower promotion steps driven
// sequentially through the await-phase timeout machinery.
type promoState struct {
	victim    partition.NodeID
	deathAt   vclock.Time
	steps     []*promoStep
	idx       int
	committed bool
	span      *obs.Span
}

// Coordinator is the global adaptation controller.
type Coordinator struct {
	cfg   Config
	clock vclock.Clock
	ep    transport.Endpoint
	net   transport.Network

	// memberAddrs holds transport addresses learned from dynamic
	// JoinRequests, keyed by node. Handler-goroutine only. Disseminated
	// via proto.MemberAddr so directory-based transports stay routable.
	memberAddrs map[partition.NodeID]string

	// memMu guards engines-map inserts (dynamic joins) against the
	// concurrent accessor reads; the handler thread is the only writer.
	memMu   sync.RWMutex
	engines map[partition.NodeID]*engineInfo
	events  *stats.EventLog

	epoch    uint64
	phase    relocPhase
	sender   partition.NodeID
	receiver partition.NodeID
	parts    []partition.ID
	started  vclock.Time
	span     *obs.Span
	// phaseSpan is the child span of the current await phase (one of the
	// four relocation waits), opened on each transition and closed when
	// the awaited reply arrives; aborts close it as aborted.
	phaseSpan *obs.Span

	// Await-phase timeout machinery: pendingTo/pendingMsg is the step
	// re-sent on timeout, attempts counts re-sends, timeoutSeq
	// invalidates timers armed for earlier phases.
	pendingTo   partition.NodeID
	pendingMsg  proto.Message
	attempts    int
	timeoutSeq  uint64
	resumeAfter bool // an aborting relocation must restore the split host
	forceSeq    uint64

	// resumes tracks pending partition releases by epoch (dead-engine
	// revival and abort restores share the retry path on the lb tick).
	resumes      map[uint64]*resumeState
	resumeCount  atomic.Int64
	running      atomic.Bool // Start was called; timers may be armed
	watchdogLast vclock.Time

	// directed marks the in-flight relocation as a coordinator-directed
	// drain (the partitions were chosen here, not by a CptV round).
	directed bool

	// promo is the in-flight failover, if any; demotes tracks Demotes
	// awaiting their ack by epoch; pendingDemotes holds failed-over
	// groups per victim until the victim revives and can be told.
	promo          *promoState
	demotes        map[uint64]*demoteState
	pendingDemotes map[partition.NodeID][]partition.ID
	demoteCount    atomic.Int64

	// replVersion/replEntries/replAssign cache the follower assignment
	// broadcast as ReplicaMap (replAssign indexes it by group for the
	// promotion planner).
	replVersion atomic.Uint64
	replEntries []proto.ReplicaEntry
	replAssign  map[partition.ID]partition.NodeID

	// lagMu guards nodeLag, the per-primary replication lag from the
	// latest stats reports (read by monitoring accessors).
	lagMu   sync.Mutex
	nodeLag map[partition.NodeID]map[partition.ID]int64

	reg           *obs.Registry
	tracer        *obs.Tracer
	log           *obs.Logger
	mRelocations  *obs.Counter
	mAborted      *obs.Counter
	mForcedSpills *obs.Counter
	mTicks        *obs.Counter
	mRetries      *obs.Counter
	mUnresolved   *obs.Counter
	mErrors       *obs.Counter
	mDeaths       *obs.Counter
	mRevivals     *obs.Counter
	mRelocVSecs   *obs.Histogram
	mJoins        *obs.Counter
	mLeaves       *obs.Counter
	mPromotions   *obs.Counter
	mDemotions    *obs.Counter
	mPromoSecs    *obs.Histogram

	quiesced      bool
	quiesceWaiter partition.NodeID

	ticker  *vclock.Ticker
	stopped bool
	// done closes when the serial handler has processed Stop, fencing
	// post-run state reads without wall-clock sleeps.
	done chan struct{}
}

// New builds a coordinator; Attach must be called before Start.
func New(cfg Config, clock vclock.Clock) (*Coordinator, error) {
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("coordinator: nil strategy")
	}
	if cfg.Map == nil {
		return nil, fmt.Errorf("coordinator: nil partition map")
	}
	if cfg.LBInterval <= 0 {
		cfg.LBInterval = 10 * time.Second
	}
	if cfg.RelocMaxRetries == 0 {
		cfg.RelocMaxRetries = 2
	}
	c := &Coordinator{
		cfg:            cfg,
		clock:          clock,
		engines:        make(map[partition.NodeID]*engineInfo),
		events:         stats.NewEventLog(),
		resumes:        make(map[uint64]*resumeState),
		demotes:        make(map[uint64]*demoteState),
		pendingDemotes: make(map[partition.NodeID][]partition.ID),
		replAssign:     make(map[partition.ID]partition.NodeID),
		nodeLag:        make(map[partition.NodeID]map[partition.ID]int64),
		reg:            obs.NewRegistry(),
		tracer:         obs.NewTracer(0),
		log:            obs.NewLogger(obs.LoggerConfig{Node: string(cfg.Node), Kind: "coordinator", Now: clock.Now}),
		done:           make(chan struct{}),
	}
	now := clock.Now()
	for _, n := range cfg.Engines {
		info := &engineInfo{memSeries: stats.NewSeries(string(n)), lastSeen: now}
		info.alive.Store(true)
		c.engines[n] = info
	}
	c.reg.Help("distq_coordinator_relocations_total", "completed state relocations")
	c.reg.Help("distq_coordinator_relocations_aborted_total", "relocations aborted before completion")
	c.reg.Help("distq_coordinator_forced_spills_total", "completed forced (coordinator-ordered) spills")
	c.reg.Help("distq_coordinator_lb_ticks_total", "load-balancing timer expirations")
	c.reg.Help("distq_coordinator_reloc_retries_total", "protocol steps re-sent after an await-phase timeout")
	c.reg.Help("distq_coordinator_reloc_unresolved_total", "adaptations abandoned with retries exhausted (requires operator attention)")
	c.reg.Help("distq_coordinator_errors_total", "errors surfaced by the coordinator handler")
	c.reg.Help("distq_coordinator_engine_deaths_total", "engines declared dead by the heartbeat watchdog")
	c.reg.Help("distq_coordinator_engine_revivals_total", "dead engines that re-registered")
	c.reg.Help("distq_coordinator_relocation_duration_vseconds", "virtual duration of completed relocations, CptV to RemapAck")
	c.reg.Help("distq_coordinator_engine_mem_bytes", "per-engine memory usage from the latest stats report")
	c.reg.Help("distq_coordinator_member_joins_total", "engines admitted into the running cluster (active after first report)")
	c.reg.Help("distq_coordinator_member_leaves_total", "engines drained of their partitions and released")
	c.reg.Help("distq_coordinator_promotions_total", "completed follower promotions (failover without checkpoint replay)")
	c.reg.Help("distq_coordinator_demotions_total", "revived engines demoted back to follower duty")
	c.reg.Help("distq_coordinator_promotion_seconds", "virtual seconds from watchdog-declared death to the failover's last remap ack")
	c.reg.Help("distq_coordinator_replication_lag_bytes", "per-engine replication lag from the latest stats report")
	c.mRelocations = c.reg.Counter("distq_coordinator_relocations_total")
	c.mAborted = c.reg.Counter("distq_coordinator_relocations_aborted_total")
	c.mForcedSpills = c.reg.Counter("distq_coordinator_forced_spills_total")
	c.mTicks = c.reg.Counter("distq_coordinator_lb_ticks_total")
	c.mRetries = c.reg.Counter("distq_coordinator_reloc_retries_total")
	c.mUnresolved = c.reg.Counter("distq_coordinator_reloc_unresolved_total")
	c.mErrors = c.reg.Counter("distq_coordinator_errors_total")
	c.mDeaths = c.reg.Counter("distq_coordinator_engine_deaths_total")
	c.mRevivals = c.reg.Counter("distq_coordinator_engine_revivals_total")
	c.mRelocVSecs = c.reg.Histogram("distq_coordinator_relocation_duration_vseconds", obs.VirtualDurationBuckets)
	c.mJoins = c.reg.Counter("distq_coordinator_member_joins_total")
	c.mLeaves = c.reg.Counter("distq_coordinator_member_leaves_total")
	c.mPromotions = c.reg.Counter("distq_coordinator_promotions_total")
	c.mDemotions = c.reg.Counter("distq_coordinator_demotions_total")
	c.mPromoSecs = c.reg.Histogram("distq_coordinator_promotion_seconds", obs.VirtualDurationBuckets)
	return c, nil
}

// Registry exposes the coordinator's metrics registry (monitoring
// endpoints, transport instrumentation).
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Tracer exposes the coordinator's span tracer; every adaptation is
// recorded there as one span.
func (c *Coordinator) Tracer() *obs.Tracer { return c.tracer }

// Logger exposes the coordinator's structured logger (level control,
// output mirroring, the monitor's /logs endpoint).
func (c *Coordinator) Logger() *obs.Logger { return c.log }

// Attach joins the coordinator to the network.
func (c *Coordinator) Attach(net transport.Network) error {
	ep, err := net.Attach(c.cfg.Node, c.Handle)
	if err != nil {
		return err
	}
	c.ep = ep
	c.net = net
	return nil
}

// Start arms the load-balancing timer.
func (c *Coordinator) Start() error {
	if c.ep == nil {
		return fmt.Errorf("coordinator: not attached")
	}
	c.running.Store(true)
	c.ticker = c.clock.NewTicker(c.cfg.LBInterval)
	self := c.cfg.Node
	go func() {
		for {
			select {
			case <-c.ticker.C:
				if err := c.ep.Send(self, proto.Tick{Kind: proto.TickLB}); err != nil {
					return
				}
			case <-c.done:
				return
			}
		}
	}()
	return nil
}

// Events exposes the coordinator's adaptation event log.
func (c *Coordinator) Events() *stats.EventLog { return c.events }

// MemSeries returns the recorded memory usage series of an engine.
func (c *Coordinator) MemSeries(node partition.NodeID) *stats.Series {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	if info, ok := c.engines[node]; ok {
		return info.memSeries
	}
	return nil
}

// Relocations reports completed relocations. Safe for concurrent use
// (e.g. from a monitoring endpoint).
func (c *Coordinator) Relocations() int { return int(c.mRelocations.Value()) }

// ForcedSpills reports completed forced spills. Safe for concurrent use.
func (c *Coordinator) ForcedSpills() int { return int(c.mForcedSpills.Value()) }

// AbortedRelocations reports relocations rolled back (empty PtV or
// exhausted retries). Safe for concurrent use.
func (c *Coordinator) AbortedRelocations() int { return int(c.mAborted.Value()) }

// Unresolved reports adaptations abandoned with retries exhausted —
// always zero unless the split host or an engine stayed unreachable
// past every deadline. Safe for concurrent use.
func (c *Coordinator) Unresolved() int { return int(c.mUnresolved.Value()) }

// Errors reports the handler error count. Safe for concurrent use.
func (c *Coordinator) Errors() int { return int(c.mErrors.Value()) }

// EngineAlive reports the watchdog's view of an engine. Safe for
// concurrent use.
func (c *Coordinator) EngineAlive(node partition.NodeID) bool {
	c.memMu.RLock()
	info, ok := c.engines[node]
	c.memMu.RUnlock()
	return ok && info.alive.Load()
}

// PendingResumes reports how many partition releases (revived engines,
// abort restores) still await their RemapAck. Safe for concurrent use.
func (c *Coordinator) PendingResumes() int { return int(c.resumeCount.Load()) }

// Promotions reports completed follower promotions. Safe for
// concurrent use.
func (c *Coordinator) Promotions() int { return int(c.mPromotions.Value()) }

// Demotions reports completed demotions of revived engines. Safe for
// concurrent use.
func (c *Coordinator) Demotions() int { return int(c.mDemotions.Value()) }

// PendingDemotes reports demotions queued for a dead victim or still
// awaiting their DemoteAck. Safe for concurrent use.
func (c *Coordinator) PendingDemotes() int { return int(c.demoteCount.Load()) }

// Membership reports every tracked engine's membership state:
// "joining", "active", "draining", "left" — or "dead" when the
// watchdog lost a not-yet-left engine. Safe for concurrent use.
func (c *Coordinator) Membership() map[partition.NodeID]string {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	out := make(map[partition.NodeID]string, len(c.engines))
	for node, info := range c.engines {
		s := MemberState(info.state.Load())
		if s != MemberLeft && !info.alive.Load() {
			out[node] = "dead"
			continue
		}
		out[node] = s.String()
	}
	return out
}

// ReplicationLag reports the latest per-group replication lag in bytes
// summed across primaries. Safe for concurrent use.
func (c *Coordinator) ReplicationLag() map[partition.ID]int64 {
	c.lagMu.Lock()
	defer c.lagMu.Unlock()
	out := make(map[partition.ID]int64)
	for _, groups := range c.nodeLag {
		for id, v := range groups {
			out[id] += v
		}
	}
	return out
}

// ReplicationSettled reports whether every live active engine has
// applied the current ReplicaMap broadcast and drained its replication
// buffers to zero lag — the fence chaos scenarios hold before killing
// a primary. Safe for concurrent use.
func (c *Coordinator) ReplicationSettled() bool {
	version := c.replVersion.Load()
	if version == 0 {
		return false
	}
	c.memMu.RLock()
	for _, info := range c.engines {
		if !info.alive.Load() || MemberState(info.state.Load()) != MemberActive {
			continue
		}
		if info.lastReplVersion.Load() != version {
			c.memMu.RUnlock()
			return false
		}
	}
	c.memMu.RUnlock()
	c.lagMu.Lock()
	defer c.lagMu.Unlock()
	for _, groups := range c.nodeLag {
		for _, v := range groups {
			if v != 0 {
				return false
			}
		}
	}
	return true
}

// fail surfaces a handler error: counted, logged, and forwarded to the
// OnError sink so a dead link fails loudly instead of stalling a fence.
func (c *Coordinator) fail(err error) {
	c.mErrors.Inc()
	c.log.Error("handler_error", obs.FErr(err))
	if c.cfg.OnError != nil {
		c.cfg.OnError(err)
	}
}

// Handle is the coordinator's transport handler.
func (c *Coordinator) Handle(from partition.NodeID, msg proto.Message) {
	if c.stopped {
		return
	}
	var err error
	switch m := msg.(type) {
	case proto.Hello:
		c.heartbeat(m.Node)
	case proto.StatsReport:
		c.onStats(m)
	case proto.Tick:
		err = c.onTick()
	case proto.PtV:
		err = c.onPtV(m)
	case proto.MarkerAck:
		err = c.onMarkerAck(m)
	case proto.Installed:
		err = c.onInstalled(m)
	case proto.RemapAck:
		err = c.onRemapAck(m)
	case proto.SpillDone:
		c.onSpillDone(m)
	case proto.RelocTimeout:
		err = c.onRelocTimeout(m)
	case proto.RelocAbortAck:
		err = c.onRelocAbortAck(m)
	case proto.JoinRequest:
		err = c.onJoinRequest(m)
	case proto.Leave:
		err = c.onLeave(m)
	case proto.PromoteAck:
		err = c.onPromoteAck(m)
	case proto.DemoteAck:
		c.onDemoteAck(m)
	case proto.Quiesce:
		err = c.onQuiesce(from)
	case proto.Stop:
		c.shutdown()
	default:
		err = fmt.Errorf("unexpected message %T from %s", msg, from)
	}
	if err != nil {
		c.fail(err)
	}
}

func (c *Coordinator) onStats(m proto.StatsReport) {
	info, ok := c.engines[m.Node]
	if !ok {
		return
	}
	c.heartbeat(m.Node)
	info.last = m
	info.haveReport = true
	info.memSeries.Add(c.clock.Now(), float64(m.MemBytes))
	c.reg.Gauge("distq_coordinator_engine_mem_bytes", obs.L("engine", string(m.Node))).Set(float64(m.MemBytes))
	if MemberState(info.state.Load()) == MemberJoining {
		// First report: the joiner's load is now known, making it
		// eligible for the rebalance planner.
		info.state.Store(int32(MemberActive))
		c.mJoins.Inc()
		now := c.clock.Now()
		if info.memberSpan != nil {
			info.memberSpan.End(now)
			info.memberSpan = nil
		}
		c.events.Add(stats.Event{T: now, Node: m.Node, Kind: stats.EventJoin, Detail: "first report; active"})
		c.log.Info("engine_joined", obs.F("engine", string(m.Node)))
	}
	info.lastReplVersion.Store(m.ReplVersion)
	var lag int64
	for _, v := range m.ReplLag {
		lag += v
	}
	c.lagMu.Lock()
	if len(m.ReplLag) > 0 {
		groups := make(map[partition.ID]int64, len(m.ReplLag))
		for id, v := range m.ReplLag {
			groups[id] = v
		}
		c.nodeLag[m.Node] = groups
	} else {
		delete(c.nodeLag, m.Node)
	}
	c.lagMu.Unlock()
	if c.cfg.Replicate {
		c.reg.Gauge("distq_coordinator_replication_lag_bytes", obs.L("engine", string(m.Node))).Set(float64(lag))
	}
}

// heartbeat records proof of life from an engine, reviving it if the
// watchdog had declared it dead. A victim reviving mid-failover is NOT
// resumed: the promotion only moves forward, and once the new map is
// committed the revived engine is demoted back to follower duty.
func (c *Coordinator) heartbeat(node partition.NodeID) {
	info, ok := c.engines[node]
	if !ok {
		return
	}
	if MemberState(info.state.Load()) == MemberLeft {
		return // terminal: a left engine cannot revive under its old name
	}
	now := c.clock.Now()
	info.lastSeen = now
	if info.alive.Load() {
		return
	}
	info.alive.Store(true)
	c.mRevivals.Inc()
	c.events.Add(stats.Event{T: now, Node: node, Kind: stats.EventEngineAlive, Detail: "re-registered"})
	c.log.Info("engine_revived", obs.F("engine", string(node)))
	if c.promo != nil && c.promo.victim == node {
		if c.promo.committed {
			c.queueDemote(node)
		}
		// Pre-commit: commitPromotion will queue the demote; whatever the
		// victim keeps is resumed by finishPromotion.
		return
	}
	if len(c.pendingDemotes[node]) > 0 {
		c.queueDemote(node)
	}
	c.resumePartitions(node, "revived engine")
}

// resumePartitions releases a node's partitions at the split host under
// the current map (owner unchanged), tracked until the RemapAck.
func (c *Coordinator) resumePartitions(node partition.NodeID, why string) {
	parts := c.cfg.Map.OwnedBy(node)
	if len(parts) == 0 {
		return
	}
	c.epoch++
	c.resumes[c.epoch] = &resumeState{node: node, parts: parts}
	c.resumeCount.Store(int64(len(c.resumes)))
	if err := c.ep.Send(c.cfg.SplitHost, proto.Remap{
		Epoch: c.epoch, Partitions: parts, Owner: node, Version: c.cfg.Map.Version(),
	}); err != nil {
		c.fail(fmt.Errorf("resume (%s) remap: %w", why, err))
	}
}

// onQuiesce stops new adaptations and acknowledges once idle. Pending
// watchdog resumes count as in-flight work: acking while a revived
// engine's partitions are still paused would let the caller fence the
// data path past their buffered tuples.
func (c *Coordinator) onQuiesce(from partition.NodeID) error {
	c.quiesced = true
	if c.phase == relocIdle && len(c.resumes) == 0 && len(c.demotes) == 0 {
		return c.ep.Send(from, proto.QuiesceAck{})
	}
	c.quiesceWaiter = from
	return nil
}

// becameIdle notifies a pending quiesce waiter once the relocation
// protocol, the watchdog resume queue, and the demotion queue are all
// idle.
func (c *Coordinator) becameIdle() {
	if c.quiesceWaiter == "" || c.phase != relocIdle || len(c.resumes) != 0 || len(c.demotes) != 0 {
		return
	}
	waiter := c.quiesceWaiter
	c.quiesceWaiter = ""
	if err := c.ep.Send(waiter, proto.QuiesceAck{}); err != nil {
		c.fail(fmt.Errorf("quiesce ack: %w", err))
	}
}

// onTick evaluates the strategy (Algorithms 1 and 2, events at GC). Only
// one adaptation runs at a time.
func (c *Coordinator) onTick() error {
	c.mTicks.Inc()
	now := c.clock.Now()
	c.checkHeartbeats(now)
	c.retryResumes()
	c.retryDemotes()
	if c.cfg.Replicate {
		c.broadcastReplicaMap()
	}
	// Pure acknowledgment, safe mid-adaptation: a leaver that already
	// owns nothing must not wait on an unrelated in-flight relocation.
	c.ackDrainedLeavers()
	if c.phase != relocIdle || c.quiesced {
		return nil
	}
	if c.cfg.Replicate && c.maybePromote(now) {
		return nil
	}
	if c.maybeDrainLeaver(now) {
		return nil
	}
	if c.maybeShedToJoiner(now) {
		return nil
	}
	loads := make([]core.EngineLoad, 0, len(c.engines))
	for node, info := range c.engines {
		if MemberState(info.state.Load()) != MemberActive {
			continue // joining: no state yet; draining/left: on the way out
		}
		if !info.alive.Load() {
			continue // dead engines are no relocation senders or targets
		}
		if !info.haveReport {
			return nil // wait until every live engine has reported once
		}
		loads = append(loads, core.EngineLoad{
			Node:        node,
			MemBytes:    info.last.MemBytes,
			Groups:      info.last.Groups,
			OutputDelta: info.last.Output - info.prevOutput,
		})
	}
	if len(loads) == 0 {
		return nil
	}
	action := c.cfg.Strategy.Decide(loads, now)
	// Productivity rates are per evaluation period: advance the window.
	for _, info := range c.engines {
		info.prevOutput = info.last.Output
	}
	if action == nil {
		return nil
	}
	switch {
	case action.Relocate != nil:
		return c.startRelocation(action.Relocate)
	case action.ForceSpill != nil:
		return c.startForcedSpill(action.ForceSpill)
	}
	return nil
}

// checkHeartbeats runs the engine watchdog: an engine silent past
// HeartbeatTimeout is declared dead and its partitions are paused at
// the split host so their tuples buffer instead of vanishing into a
// dead link. The pause is re-sent on every tick while the engine stays
// dead (it is idempotent), healing a lost pause by the next interval.
func (c *Coordinator) checkHeartbeats(now vclock.Time) {
	if c.cfg.HeartbeatTimeout <= 0 {
		return
	}
	for node, info := range c.engines {
		if MemberState(info.state.Load()) == MemberLeft {
			continue // released engines are no longer watched
		}
		if info.alive.Load() {
			if now.Sub(info.lastSeen) > c.cfg.HeartbeatTimeout {
				info.alive.Store(false)
				info.diedAt = now
				c.mDeaths.Inc()
				c.events.Add(stats.Event{T: now, Node: node, Kind: stats.EventEngineDead,
					Detail: fmt.Sprintf("silent for %s", now.Sub(info.lastSeen))})
				c.log.Warn("engine_dead", obs.F("engine", string(node)),
					obs.F("silent_for", now.Sub(info.lastSeen).String()))
				c.pauseDead(node)
			}
			continue
		}
		c.pauseDead(node)
	}
}

// pauseDead pauses a dead engine's partitions at the split host.
func (c *Coordinator) pauseDead(node partition.NodeID) {
	parts := c.cfg.Map.OwnedBy(node)
	if len(parts) == 0 {
		return
	}
	c.epoch++
	if err := c.ep.Send(c.cfg.SplitHost, proto.Pause{Epoch: c.epoch, Partitions: parts, Owner: node}); err != nil {
		c.fail(fmt.Errorf("pause dead engine %s: %w", node, err))
	}
}

// retryResumes re-sends pending resume Remaps on the lb tick until
// acknowledged or abandoned.
func (c *Coordinator) retryResumes() {
	for epoch, r := range c.resumes {
		r.attempts++
		if r.attempts > resumeMaxRetries {
			delete(c.resumes, epoch)
			c.resumeCount.Store(int64(len(c.resumes)))
			c.mUnresolved.Inc()
			c.fail(fmt.Errorf("resume of %s (epoch %d) unacknowledged after %d attempts", r.node, epoch, r.attempts-1))
			c.becameIdle() // the fence must still unblock after a failed resume
			continue
		}
		if err := c.ep.Send(c.cfg.SplitHost, proto.Remap{
			Epoch: epoch, Partitions: r.parts, Owner: r.node, Version: c.cfg.Map.Version(),
		}); err != nil {
			c.fail(fmt.Errorf("resume retry: %w", err))
		}
	}
}

// beginPhase opens the await-phase child span under the in-flight
// adaptation span (closing any phase span left open).
func (c *Coordinator) beginPhase(name string, vt vclock.Time) {
	c.endPhase(vt)
	c.phaseSpan = c.tracer.StartChild(name, string(c.cfg.Node), vt, c.span.Context())
}

// endPhase closes the open await-phase span, if any.
func (c *Coordinator) endPhase(vt vclock.Time) {
	if c.phaseSpan != nil {
		c.phaseSpan.End(vt)
		c.phaseSpan = nil
	}
}

// abortPhase closes the open await-phase span as aborted, if any.
func (c *Coordinator) abortPhase(vt vclock.Time, reason string) {
	if c.phaseSpan != nil {
		c.phaseSpan.Abort(vt, reason)
		c.phaseSpan = nil
	}
}

// startRelocation runs protocol step 1.
func (c *Coordinator) startRelocation(r *core.Relocation) error {
	if info, ok := c.engines[r.Sender]; !ok || !info.alive.Load() {
		return fmt.Errorf("relocation sender %s unknown or dead", r.Sender)
	}
	if info, ok := c.engines[r.Receiver]; !ok || !info.alive.Load() {
		return fmt.Errorf("relocation receiver %s unknown or dead", r.Receiver)
	}
	c.epoch++
	c.phase = relocWaitPtV
	c.sender, c.receiver = r.Sender, r.Receiver
	c.started = c.clock.Now()
	c.resumeAfter = false
	c.directed = false
	c.span = c.tracer.Start(obs.SpanRelocation, string(c.cfg.Node), c.started)
	c.span.SetAttr("epoch", strconv.FormatUint(c.epoch, 10))
	c.span.SetAttr("sender", string(r.Sender))
	c.span.SetAttr("receiver", string(r.Receiver))
	c.span.SetAttr("amount_bytes", strconv.FormatInt(r.Amount, 10))
	if r.LowProd {
		c.span.SetAttr("reason", "rebalance")
	}
	c.span.Step(obs.StepCptV, c.started)
	c.beginPhase(obs.SpanRelocWaitPtV, c.started)
	c.log.Info("relocation_started",
		obs.FUint("epoch", c.epoch), obs.F("sender", string(r.Sender)),
		obs.F("receiver", string(r.Receiver)), obs.FInt("amount_bytes", r.Amount))
	return c.sendStep(r.Sender, proto.CptV{Epoch: c.epoch, Amount: r.Amount, Receiver: r.Receiver, LowProd: r.LowProd, Trace: c.span.Context()})
}

func (c *Coordinator) startForcedSpill(f *core.ForcedSpill) error {
	if info, ok := c.engines[f.Node]; !ok || !info.alive.Load() {
		return fmt.Errorf("forced-spill target %s unknown or dead", f.Node)
	}
	c.phase = forceWaitSpillDone
	c.sender = f.Node
	c.forceSeq++
	c.span = c.tracer.Start(obs.SpanForcedSpill, string(c.cfg.Node), c.clock.Now())
	c.span.SetAttr("node", string(f.Node))
	c.span.SetAttr("amount_bytes", strconv.FormatInt(f.Amount, 10))
	c.log.Info("forced_spill_started",
		obs.F("engine", string(f.Node)), obs.FInt("amount_bytes", f.Amount), obs.FUint("seq", c.forceSeq))
	return c.sendStep(f.Node, proto.ForceSpill{Amount: f.Amount, Seq: c.forceSeq, Trace: c.span.Context()})
}

// sendStep transitions into an await phase: it records the pending
// (idempotent) step for timeout-driven retries, arms the virtual-time
// deadline, and sends.
func (c *Coordinator) sendStep(to partition.NodeID, msg proto.Message) error {
	c.pendingTo, c.pendingMsg = to, msg
	c.attempts = 0
	c.armTimeout()
	return c.ep.Send(to, msg)
}

// armTimeout schedules a RelocTimeout for the current phase and attempt
// count (exponential backoff). Timers are only armed on a running
// coordinator (Start called); the sequence number invalidates timers
// from earlier phases.
func (c *Coordinator) armTimeout() {
	c.timeoutSeq++
	if !c.running.Load() {
		return // unit rigs drive the protocol synchronously
	}
	if c.cfg.RelocTimeout <= 0 {
		return // deadlines disabled: loss-free transport
	}
	d := c.cfg.RelocTimeout
	for i := 0; i < c.attempts; i++ {
		d *= 2
	}
	seq, epoch := c.timeoutSeq, c.epoch
	ch := c.clock.After(d)
	go func() {
		select {
		case <-ch:
			//distqlint:allow senderrcheck: self-addressed timer; a dead own endpoint means shutdown already won the race
			c.ep.Send(c.cfg.Node, proto.RelocTimeout{Epoch: epoch, Seq: seq})
		case <-c.done:
		}
	}()
}

// disarm invalidates the armed await-phase timer.
func (c *Coordinator) disarm() { c.timeoutSeq++ }

// onRelocTimeout handles an await-phase deadline: re-send the pending
// step while retries remain, then escalate.
func (c *Coordinator) onRelocTimeout(m proto.RelocTimeout) error {
	if m.Seq != c.timeoutSeq || c.phase == relocIdle {
		return nil // stale timer from an earlier phase
	}
	if c.attempts < c.cfg.RelocMaxRetries {
		c.attempts++
		c.mRetries.Inc()
		c.events.Add(stats.Event{T: c.clock.Now(), Node: c.pendingTo, Kind: stats.EventRetry,
			Detail: fmt.Sprintf("phase %s attempt %d epoch %d", c.phase, c.attempts, c.epoch)})
		c.armTimeout()
		return c.ep.Send(c.pendingTo, c.pendingMsg)
	}
	return c.escalate()
}

// escalate handles an await phase whose retries are exhausted.
func (c *Coordinator) escalate() error {
	now := c.clock.Now()
	switch c.phase {
	case relocWaitPtV:
		// Nothing paused, nothing moved: release the sender and finish.
		c.resumeAfter = false
		return c.enterAbortSender("ptv timeout")
	case relocWaitMarker:
		// The split host may or may not have paused: release the sender,
		// then restore the split host (idempotent either way).
		c.resumeAfter = true
		return c.enterAbortSender("marker timeout")
	case relocWaitInstalled:
		// The transfer may have raced the abort: ask the receiver first;
		// its ack resolves commit-forward versus roll-back.
		c.phase = abortWaitReceiver
		c.abortPhase(now, "installed timeout")
		c.span.SetAttr("abort_from", "wait_installed")
		return c.sendStep(c.receiver, proto.RelocAbort{Epoch: c.epoch})
	case relocWaitRemapAck:
		// The map is committed; rolling back would fork ownership. Give
		// up loudly — the split host link is gone past every deadline.
		c.giveUp("remap unacknowledged")
		return nil
	case abortWaitSender:
		if c.resumeAfter {
			// The sender never acked the rollback, but the paused
			// partitions must not stay parked at the split host: restore
			// them anyway (the remap is idempotent, and a slow sender's
			// late abort handling re-acks harmlessly), then surface the
			// unacknowledged sender as an error rather than lost data.
			c.fail(fmt.Errorf("adaptation epoch %d: sender abort unacknowledged, restoring split host", c.epoch))
			c.phase = abortWaitResume
			return c.sendStep(c.cfg.SplitHost, proto.Remap{
				Epoch: c.epoch, Partitions: c.parts, Owner: c.sender, Version: c.cfg.Map.Version(),
			})
		}
		c.giveUp("abort unacknowledged in " + c.phase.String())
		return nil
	case abortWaitReceiver, abortWaitResume:
		c.giveUp("abort unacknowledged in " + c.phase.String())
		return nil
	case forceWaitSpillDone:
		c.span.Abort(now, "spill done timeout")
		c.span = nil
		c.mAborted.Inc()
		c.disarm()
		c.phase = relocIdle
		c.becameIdle()
		return nil
	case promoWaitAck:
		// The follower never acked: skip it — its groups stay paused and
		// a later watchdog tick retries their promotion — and carry on
		// with the remaining steps.
		p := c.promo
		c.mUnresolved.Inc()
		c.fail(fmt.Errorf("promotion epoch %d: follower %s unresponsive, skipping %d groups",
			c.epoch, p.steps[p.idx].to, len(p.steps[p.idx].groups)))
		p.idx++
		if p.idx < len(p.steps) {
			c.sendPromoteStep(now)
			return nil
		}
		return c.commitPromotion(now)
	case promoWaitRemap:
		// The map is committed; never roll back. Surface the silent
		// split host and finish the remaining steps.
		p := c.promo
		c.mUnresolved.Inc()
		c.fail(fmt.Errorf("promotion epoch %d: remap for %s unacknowledged", c.epoch, p.steps[p.idx].to))
		p.idx++
		if c.advanceToAckedStep() {
			c.sendPromoRemap(now)
			return nil
		}
		return c.finishPromotion(now)
	default:
		return nil
	}
}

// enterAbortSender starts the sender half of the rollback.
func (c *Coordinator) enterAbortSender(reason string) error {
	c.phase = abortWaitSender
	c.abortPhase(c.clock.Now(), reason)
	c.span.SetAttr("abort_reason", reason)
	return c.sendStep(c.sender, proto.RelocAbort{Epoch: c.epoch})
}

// giveUp abandons the in-flight adaptation with retries exhausted. The
// coordinator returns to idle (bounded: it never hangs), but the result
// is surfaced as an unresolved error — state may be parked until the
// unreachable peer returns.
func (c *Coordinator) giveUp(reason string) {
	c.mUnresolved.Inc()
	c.fail(fmt.Errorf("adaptation epoch %d unresolved: %s", c.epoch, reason))
	c.abortAdaptation(c.clock.Now(), reason)
}

// onRelocAbortAck advances the rollback state machine.
func (c *Coordinator) onRelocAbortAck(m proto.RelocAbortAck) error {
	if m.Epoch != c.epoch {
		return nil // stale
	}
	now := c.clock.Now()
	switch c.phase {
	case abortWaitReceiver:
		if m.Node != c.receiver {
			return nil
		}
		if m.Installed {
			// The receiver holds the state: commit forward.
			c.span.SetAttr("abort_resolution", "commit_forward")
			return c.commitAndRemap(now)
		}
		// Roll back through the sender, then restore the split host.
		c.resumeAfter = true
		return c.enterAbortSender("installed timeout")
	case abortWaitSender:
		if m.Node != c.sender {
			return nil
		}
		if !c.resumeAfter {
			c.abortAdaptation(now, "aborted in wait_ptv")
			return nil
		}
		// Restore the split host: same owner, current (unchanged) map
		// version; remap unpauses and flushes the buffered tuples.
		c.phase = abortWaitResume
		return c.sendStep(c.cfg.SplitHost, proto.Remap{
			Epoch: c.epoch, Partitions: c.parts, Owner: c.sender, Version: c.cfg.Map.Version(),
			Trace: c.span.Context(),
		})
	default:
		return nil
	}
}

// onPtV runs protocol step 3: pause the moving partitions at the split
// host. An empty list aborts the adaptation.
func (c *Coordinator) onPtV(m proto.PtV) error {
	if c.phase != relocWaitPtV || m.Epoch != c.epoch {
		return nil // stale
	}
	now := c.clock.Now()
	c.span.Step(obs.StepPtV, now)
	c.endPhase(now)
	if len(m.Partitions) == 0 {
		c.abortAdaptation(now, "empty ptv")
		return nil
	}
	c.parts = m.Partitions
	c.phase = relocWaitMarker
	c.span.SetAttr("partitions", strconv.Itoa(len(m.Partitions)))
	c.span.Step(obs.StepPause, now)
	c.beginPhase(obs.SpanRelocWaitMarker, now)
	return c.sendStep(c.cfg.SplitHost, proto.Pause{Epoch: c.epoch, Partitions: m.Partitions, Owner: c.sender, Trace: c.span.Context()})
}

// abortAdaptation closes the in-flight span as aborted and returns the
// coordinator to idle.
func (c *Coordinator) abortAdaptation(vt vclock.Time, reason string) {
	c.abortPhase(vt, reason)
	c.span.Abort(vt, reason)
	c.span = nil
	c.log.Warn("relocation_aborted", obs.FUint("epoch", c.epoch), obs.F("reason", reason))
	c.mAborted.Inc()
	c.events.Add(stats.Event{T: vt, Node: c.sender, Kind: stats.EventAbort, Detail: reason})
	c.disarm()
	c.phase = relocIdle
	c.parts = nil
	c.becameIdle()
}

// onMarkerAck runs protocol step 5: the sender drained its data path;
// order the state transfer.
func (c *Coordinator) onMarkerAck(m proto.MarkerAck) error {
	if c.phase != relocWaitMarker || m.Epoch != c.epoch || m.Node != c.sender {
		return nil
	}
	now := c.clock.Now()
	c.span.Step(obs.StepMarkerAck, now)
	c.endPhase(now)
	c.phase = relocWaitInstalled
	c.span.Step(obs.StepSendStates, now)
	c.beginPhase(obs.SpanRelocWaitInstall, now)
	return c.sendStep(c.sender, proto.SendStates{Epoch: c.epoch, Partitions: c.parts, Receiver: c.receiver, Directed: c.directed, Trace: c.span.Context()})
}

// onInstalled runs protocol step 7: commit the new ownership to the
// master map and remap the split host.
func (c *Coordinator) onInstalled(m proto.Installed) error {
	if c.phase != relocWaitInstalled || m.Epoch != c.epoch || m.Node != c.receiver {
		return nil
	}
	now := c.clock.Now()
	c.span.Step(obs.StepInstalled, now)
	c.endPhase(now)
	return c.commitAndRemap(now)
}

// commitAndRemap commits the new ownership to the master map and orders
// the split host remap (step 7), from the normal path or from an abort
// resolved as commit-forward.
func (c *Coordinator) commitAndRemap(now vclock.Time) error {
	version, err := c.cfg.Map.Move(c.parts, c.receiver)
	if err != nil {
		c.abortAdaptation(now, "map commit: "+err.Error())
		return fmt.Errorf("commit relocation: %w", err)
	}
	c.phase = relocWaitRemapAck
	c.span.Step(obs.StepRemap, now)
	c.beginPhase(obs.SpanRelocWaitRemapAck, now)
	return c.sendStep(c.cfg.SplitHost, proto.Remap{
		Epoch: c.epoch, Partitions: c.parts, Owner: c.receiver, Version: version,
	})
}

// onRemapAck completes a relocation (step 8), an abort restore, or a
// pending dead-engine resume.
func (c *Coordinator) onRemapAck(m proto.RemapAck) error {
	if r, ok := c.resumes[m.Epoch]; ok {
		delete(c.resumes, m.Epoch)
		c.resumeCount.Store(int64(len(c.resumes)))
		c.events.Add(stats.Event{T: c.clock.Now(), Node: r.node, Kind: stats.EventEngineAlive,
			Detail: fmt.Sprintf("%d partitions resumed", len(r.parts))})
		c.becameIdle()
		return nil
	}
	if m.Epoch != c.epoch {
		return nil
	}
	now := c.clock.Now()
	switch c.phase {
	case relocWaitRemapAck:
		c.span.Step(obs.StepRemapAck, now)
		c.endPhase(now)
		c.span.End(now)
		c.span = nil
		c.mRelocations.Inc()
		c.mRelocVSecs.ObserveDuration(now.Sub(c.started))
		c.log.Info("relocation_complete",
			obs.FUint("epoch", c.epoch), obs.F("sender", string(c.sender)),
			obs.F("receiver", string(c.receiver)), obs.FInt("partitions", int64(len(c.parts))))
		c.events.Add(stats.Event{
			T: now, Node: c.sender, Kind: stats.EventRelocation,
			Detail: fmt.Sprintf("%d groups %s->%s in %s", len(c.parts), c.sender, c.receiver, now.Sub(c.started)),
		})
		c.disarm()
		c.phase = relocIdle
		c.parts = nil
		c.becameIdle()
		return nil
	case abortWaitResume:
		c.abortAdaptation(now, "rolled back, split host restored")
		return nil
	case promoWaitRemap:
		p := c.promo
		p.span.Step(obs.StepRemapAcked, now)
		c.disarm()
		p.idx++
		if c.advanceToAckedStep() {
			c.sendPromoRemap(now)
			return nil
		}
		return c.finishPromotion(now)
	default:
		return nil
	}
}

func (c *Coordinator) onSpillDone(m proto.SpillDone) {
	if c.phase != forceWaitSpillDone || m.Node != c.sender {
		return
	}
	if m.Seq != 0 && m.Seq != c.forceSeq {
		return // ack of an earlier forced spill
	}
	c.span.SetAttr("spilled_bytes", strconv.FormatInt(m.Bytes, 10))
	c.span.End(c.clock.Now())
	c.span = nil
	c.mForcedSpills.Inc()
	c.log.Info("forced_spill_complete", obs.F("engine", string(m.Node)), obs.FInt("spilled_bytes", m.Bytes))
	c.events.Add(stats.Event{
		T: c.clock.Now(), Node: m.Node, Kind: stats.EventForcedSpill,
		Detail: fmt.Sprintf("%d bytes", m.Bytes),
	})
	c.disarm()
	c.phase = relocIdle
	c.becameIdle()
}

// onJoinRequest admits a dynamically joining engine. Idempotent: an
// engine already tracked is re-acked (its JoinAck may have been lost).
// A name that already left is refused — resurrecting it could confuse
// stale protocol traffic from its previous life with the new one.
func (c *Coordinator) onJoinRequest(m proto.JoinRequest) error {
	c.learnMemberAddr(m.Node, m.Addr, m.Trace)
	if info, ok := c.engines[m.Node]; ok {
		if MemberState(info.state.Load()) == MemberLeft {
			return c.ep.Send(m.Node, proto.JoinAck{Node: m.Node, Accepted: false,
				Reason: "node name previously left the cluster", Trace: m.Trace})
		}
		c.heartbeat(m.Node)
		return c.ep.Send(m.Node, proto.JoinAck{Node: m.Node, Accepted: true, Trace: m.Trace})
	}
	now := c.clock.Now()
	info := &engineInfo{memSeries: stats.NewSeries(string(m.Node)), lastSeen: now}
	info.alive.Store(true)
	info.state.Store(int32(MemberJoining))
	span := c.tracer.Start(obs.SpanMembership, string(c.cfg.Node), now)
	span.SetAttr("kind", "join")
	span.SetAttr("node", string(m.Node))
	info.memberSpan = span
	c.memMu.Lock()
	c.engines[m.Node] = info
	c.memMu.Unlock()
	c.events.Add(stats.Event{T: now, Node: m.Node, Kind: stats.EventJoin, Detail: "admitted; awaiting first report"})
	c.log.Info("engine_admitted", obs.F("engine", string(m.Node)))
	return c.ep.Send(m.Node, proto.JoinAck{Node: m.Node, Accepted: true, Trace: m.Trace})
}

// learnMemberAddr records a dynamically joined engine's transport
// address, extends the coordinator's own directory (directory-based
// transports expose AddNode; in-proc ignores it), and disseminates it:
// broadcast to the split host and every current member, and a replay of
// all previously learned addresses to the joiner itself. Must run
// before the JoinAck is sent — the ack is routed by directory too.
// Idempotent per (node, addr); handler-goroutine only.
func (c *Coordinator) learnMemberAddr(node partition.NodeID, addr string, tr obs.TraceContext) {
	if addr == "" || c.memberAddrs[node] == addr {
		return
	}
	if c.memberAddrs == nil {
		c.memberAddrs = make(map[partition.NodeID]string)
	}
	c.memberAddrs[node] = addr
	if d, ok := c.net.(interface {
		AddNode(partition.NodeID, string)
	}); ok {
		d.AddNode(node, addr)
	}
	c.log.Info("member_addr", obs.F("engine", string(node)), obs.F("addr", addr))
	msg := proto.MemberAddr{Node: node, Addr: addr, Trace: tr}
	if err := c.ep.Send(c.cfg.SplitHost, msg); err != nil {
		c.fail(fmt.Errorf("member addr to split host: %w", err))
	}
	for peer, info := range c.engines {
		if peer == node || MemberState(info.state.Load()) == MemberLeft {
			continue
		}
		if err := c.ep.Send(peer, msg); err != nil {
			c.fail(fmt.Errorf("member addr to %s: %w", peer, err))
		}
	}
	for other, oaddr := range c.memberAddrs {
		if other == node {
			continue
		}
		if err := c.ep.Send(node, proto.MemberAddr{Node: other, Addr: oaddr, Trace: tr}); err != nil {
			c.fail(fmt.Errorf("member addr replay to %s: %w", node, err))
		}
	}
}

// onLeave marks an engine draining: the drain planner relocates its
// groups away on subsequent ticks and ackDrainedLeavers answers once
// it owns nothing. Idempotent — an engine already left is re-acked.
func (c *Coordinator) onLeave(m proto.Leave) error {
	info, ok := c.engines[m.Node]
	if !ok {
		return fmt.Errorf("leave from unknown engine %s", m.Node)
	}
	if MemberState(info.state.Load()) == MemberLeft {
		return c.ep.Send(m.Node, proto.LeaveAck{Node: m.Node, Trace: m.Trace})
	}
	c.heartbeat(m.Node)
	if MemberState(info.state.Load()) != MemberDraining {
		now := c.clock.Now()
		info.state.Store(int32(MemberDraining))
		if info.memberSpan != nil {
			info.memberSpan.End(now)
		}
		span := c.tracer.Start(obs.SpanMembership, string(c.cfg.Node), now)
		span.SetAttr("kind", "leave")
		span.SetAttr("node", string(m.Node))
		info.memberSpan = span
		owned := len(c.cfg.Map.OwnedBy(m.Node))
		c.events.Add(stats.Event{T: now, Node: m.Node, Kind: stats.EventLeave,
			Detail: fmt.Sprintf("draining %d partitions", owned)})
		c.log.Info("engine_draining", obs.F("engine", string(m.Node)), obs.FInt("partitions", int64(owned)))
	}
	c.ackDrainedLeavers()
	return nil
}

// ackDrainedLeavers releases draining engines that own no partitions:
// LeaveAck is sent, the state becomes Left (terminal), and the engine
// drops out of the watchdog, the load set, and the replica ring. A
// lost ack self-heals through the engine's Leave retry.
func (c *Coordinator) ackDrainedLeavers() {
	for node, info := range c.engines {
		if MemberState(info.state.Load()) != MemberDraining {
			continue
		}
		if len(c.cfg.Map.OwnedBy(node)) != 0 {
			continue
		}
		now := c.clock.Now()
		info.state.Store(int32(MemberLeft))
		if info.memberSpan != nil {
			info.memberSpan.End(now)
			info.memberSpan = nil
		}
		c.mLeaves.Inc()
		c.lagMu.Lock()
		delete(c.nodeLag, node)
		c.lagMu.Unlock()
		c.events.Add(stats.Event{T: now, Node: node, Kind: stats.EventLeave, Detail: "drained; released"})
		c.log.Info("engine_left", obs.F("engine", string(node)))
		if err := c.ep.Send(node, proto.LeaveAck{Node: node}); err != nil {
			c.fail(fmt.Errorf("leave ack to %s: %w", node, err))
		}
	}
}

// maybeDrainLeaver starts a directed drain for a draining engine that
// still owns partitions: one relocation moving everything it owns to
// the emptiest remaining engine, skipping the CptV/PtV round (the
// coordinator, not the sender, chose the partitions). Returns true if
// a drain was started.
func (c *Coordinator) maybeDrainLeaver(now vclock.Time) bool {
	var leaver partition.NodeID
	for node, info := range c.engines {
		if MemberState(info.state.Load()) != MemberDraining || !info.alive.Load() {
			continue
		}
		if len(c.cfg.Map.OwnedBy(node)) == 0 {
			continue
		}
		if leaver == "" || node < leaver {
			leaver = node
		}
	}
	if leaver == "" {
		return false
	}
	var recv partition.NodeID
	var recvMem int64
	for node, info := range c.engines {
		if node == leaver || !info.alive.Load() || MemberState(info.state.Load()) != MemberActive || !info.haveReport {
			continue
		}
		if recv == "" || info.last.MemBytes < recvMem || (info.last.MemBytes == recvMem && node < recv) {
			recv, recvMem = node, info.last.MemBytes
		}
	}
	if recv == "" {
		return false // nowhere to drain to; retry next tick
	}
	parts := c.cfg.Map.OwnedBy(leaver)
	c.epoch++
	c.phase = relocWaitMarker
	c.sender, c.receiver = leaver, recv
	c.parts = parts
	c.started = now
	c.resumeAfter = false
	c.directed = true
	c.span = c.tracer.Start(obs.SpanRelocationDrain, string(c.cfg.Node), now)
	c.span.SetAttr("epoch", strconv.FormatUint(c.epoch, 10))
	c.span.SetAttr("sender", string(leaver))
	c.span.SetAttr("receiver", string(recv))
	c.span.SetAttr("reason", "drain")
	c.span.SetAttr("partitions", strconv.Itoa(len(parts)))
	c.span.Step(obs.StepPause, now)
	c.beginPhase(obs.SpanRelocWaitMarker, now)
	c.log.Info("drain_started", obs.FUint("epoch", c.epoch), obs.F("leaver", string(leaver)),
		obs.F("receiver", string(recv)), obs.FInt("partitions", int64(len(parts))))
	if err := c.sendStep(c.cfg.SplitHost, proto.Pause{Epoch: c.epoch, Partitions: parts, Owner: leaver, Trace: c.span.Context()}); err != nil {
		c.fail(err)
	}
	return true
}

// maybeShedToJoiner rebalances onto an active engine that owns nothing
// (a fresh joiner, or a flap victim demoted of everything): the fullest
// engine sheds its least productive groups, sized to level it with the
// cluster mean — Bala-Join's cost framing, cheap state warms the
// newcomer without disturbing hot groups. Returns true if a rebalance
// was started.
func (c *Coordinator) maybeShedToJoiner(now vclock.Time) bool {
	var joiner partition.NodeID
	for node, info := range c.engines {
		if MemberState(info.state.Load()) != MemberActive || !info.alive.Load() || !info.haveReport {
			continue
		}
		if len(c.cfg.Map.OwnedBy(node)) != 0 {
			continue
		}
		if joiner == "" || node < joiner {
			joiner = node
		}
	}
	if joiner == "" {
		return false
	}
	var sender partition.NodeID
	var senderMem, total int64
	n := 0
	for node, info := range c.engines {
		if MemberState(info.state.Load()) != MemberActive || !info.alive.Load() || !info.haveReport {
			continue
		}
		total += info.last.MemBytes
		n++
		if node == joiner || len(c.cfg.Map.OwnedBy(node)) == 0 {
			continue
		}
		if sender == "" || info.last.MemBytes > senderMem || (info.last.MemBytes == senderMem && node < sender) {
			sender, senderMem = node, info.last.MemBytes
		}
	}
	if sender == "" || n == 0 {
		return false
	}
	amount := senderMem - total/int64(n)
	if amount <= 0 {
		return false // the joiner's share would be empty; leave it be
	}
	if err := c.startRelocation(&core.Relocation{Sender: sender, Receiver: joiner, Amount: amount, LowProd: true}); err != nil {
		c.fail(err)
	}
	return true
}

// followerFor picks a primary's follower: the next active engine after
// it in name order, wrapping — deterministic, spreading followers
// across the ring without extra state (the influxdb-ha shape).
func followerFor(ring []partition.NodeID, primary partition.NodeID) partition.NodeID {
	for _, n := range ring {
		if n > primary {
			return n
		}
	}
	if len(ring) > 0 && ring[0] != primary {
		return ring[0]
	}
	if len(ring) > 1 {
		return ring[1]
	}
	return ""
}

// broadcastReplicaMap recomputes the desired follower assignment and
// broadcasts it to every live engine. The version bumps only when the
// assignment changes, but the current map is re-sent on every tick:
// engines apply only newer versions, so a lost broadcast self-heals
// without churn.
func (c *Coordinator) broadcastReplicaMap() {
	ring := make([]partition.NodeID, 0, len(c.engines))
	for node, info := range c.engines {
		if info.alive.Load() && MemberState(info.state.Load()) == MemberActive {
			ring = append(ring, node)
		}
	}
	if len(ring) < 2 {
		return // nobody can follow for anybody
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	entries := make([]proto.ReplicaEntry, 0, c.cfg.Map.N())
	for id := 0; id < c.cfg.Map.N(); id++ {
		pid := partition.ID(id)
		owner, err := c.cfg.Map.Owner(pid)
		if err != nil {
			continue
		}
		if f := followerFor(ring, owner); f != "" {
			entries = append(entries, proto.ReplicaEntry{Group: pid, Primary: owner, Follower: f})
		}
	}
	changed := len(entries) != len(c.replEntries)
	if !changed {
		for i := range entries {
			if entries[i] != c.replEntries[i] {
				changed = true
				break
			}
		}
	}
	if changed {
		c.replEntries = entries
		c.replAssign = make(map[partition.ID]partition.NodeID, len(entries))
		for _, e := range entries {
			c.replAssign[e.Group] = e.Follower
		}
		c.replVersion.Add(1)
		c.log.Info("replica_map_updated", obs.FUint("version", c.replVersion.Load()),
			obs.FInt("entries", int64(len(entries))))
	}
	version := c.replVersion.Load()
	if version == 0 {
		return
	}
	msg := proto.ReplicaMap{Version: version, Entries: c.replEntries}
	for node, info := range c.engines {
		if !info.alive.Load() || MemberState(info.state.Load()) == MemberLeft {
			continue
		}
		if err := c.ep.Send(node, msg); err != nil {
			c.fail(fmt.Errorf("replica map to %s: %w", node, err))
		}
	}
}

// maybePromote fails a dead engine's groups over to their followers:
// sequential Promote steps (one per follower), one map commit of every
// acked step, then sequential split-host remaps. Groups whose follower
// is itself unreachable stay paused and are retried on a later tick.
// Returns true if a promotion was started.
func (c *Coordinator) maybePromote(now vclock.Time) bool {
	if c.promo != nil {
		return false
	}
	victims := make([]partition.NodeID, 0, len(c.engines))
	for node, info := range c.engines {
		if !info.alive.Load() && MemberState(info.state.Load()) != MemberLeft {
			victims = append(victims, node)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, node := range victims {
		info := c.engines[node]
		owned := c.cfg.Map.OwnedBy(node)
		if len(owned) == 0 {
			continue
		}
		byFollower := make(map[partition.NodeID][]partition.ID)
		for _, id := range owned {
			f, ok := c.replAssign[id]
			if !ok {
				continue
			}
			finfo, ok := c.engines[f]
			if !ok || !finfo.alive.Load() || MemberState(finfo.state.Load()) != MemberActive {
				continue
			}
			byFollower[f] = append(byFollower[f], id)
		}
		if len(byFollower) == 0 {
			continue // no live follower yet; retry next tick
		}
		followers := make([]partition.NodeID, 0, len(byFollower))
		for f := range byFollower {
			followers = append(followers, f)
		}
		sort.Slice(followers, func(i, j int) bool { return followers[i] < followers[j] })
		steps := make([]*promoStep, 0, len(followers))
		for _, f := range followers {
			parts := byFollower[f]
			sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
			steps = append(steps, &promoStep{to: f, groups: parts})
		}
		span := c.tracer.Start(obs.SpanPromotion, string(c.cfg.Node), info.diedAt)
		span.SetAttr("victim", string(node))
		span.SetAttr("partitions", strconv.Itoa(len(owned)))
		span.SetAttr("followers", strconv.Itoa(len(steps)))
		span.Step(obs.StepDeathDetected, info.diedAt)
		c.promo = &promoState{victim: node, deathAt: info.diedAt, steps: steps, span: span}
		c.phase = promoWaitAck
		c.log.Info("promotion_started", obs.F("victim", string(node)),
			obs.FInt("partitions", int64(len(owned))), obs.FInt("followers", int64(len(steps))))
		c.sendPromoteStep(now)
		return true
	}
	return false
}

// sendPromoteStep issues the current promotion step under a fresh
// epoch, so acks duplicated by the network miss the epoch check
// instead of double-advancing the sequential machine.
func (c *Coordinator) sendPromoteStep(now vclock.Time) {
	p := c.promo
	step := p.steps[p.idx]
	c.epoch++
	p.span.Step(obs.StepPromoteSent, now)
	if err := c.sendStep(step.to, proto.Promote{Epoch: c.epoch, From: p.victim, Groups: step.groups, Trace: p.span.Context()}); err != nil {
		c.fail(fmt.Errorf("promote step to %s: %w", step.to, err))
	}
}

// onPromoteAck advances the sequential promotion machine.
func (c *Coordinator) onPromoteAck(m proto.PromoteAck) error {
	if c.phase != promoWaitAck || c.promo == nil || m.Epoch != c.epoch {
		return nil // stale or duplicated ack
	}
	p := c.promo
	if m.Node != p.steps[p.idx].to {
		return nil
	}
	now := c.clock.Now()
	p.steps[p.idx].acked = true
	p.span.Step(obs.StepPromoteAcked, now)
	c.disarm()
	p.idx++
	if p.idx < len(p.steps) {
		c.sendPromoteStep(now)
		return nil
	}
	return c.commitPromotion(now)
}

// commitPromotion moves every acked step's groups to its follower in
// the master map — the commit point: from here the failover only moves
// forward, mirroring the post-map-commit escalation rules — then
// starts the split-host remap sequence.
func (c *Coordinator) commitPromotion(now vclock.Time) error {
	p := c.promo
	var moved []partition.ID
	for _, s := range p.steps {
		if !s.acked {
			continue
		}
		if _, err := c.cfg.Map.Move(s.groups, s.to); err != nil {
			c.fail(fmt.Errorf("promotion map commit for %s: %w", s.to, err))
			s.acked = false
			continue
		}
		moved = append(moved, s.groups...)
	}
	if len(moved) == 0 {
		p.span.Abort(now, "no step promoted")
		c.mUnresolved.Inc()
		c.promo = nil
		c.disarm()
		c.phase = relocIdle
		c.becameIdle()
		return fmt.Errorf("promotion of %s: no follower reachable", p.victim)
	}
	p.committed = true
	p.span.Step(obs.StepMapCommitted, now)
	c.pendingDemotes[p.victim] = append(c.pendingDemotes[p.victim], moved...)
	c.updateDemoteCount()
	if info, ok := c.engines[p.victim]; ok && info.alive.Load() {
		c.queueDemote(p.victim)
	}
	c.phase = promoWaitRemap
	p.idx = 0
	if !c.advanceToAckedStep() {
		return c.finishPromotion(now)
	}
	c.sendPromoRemap(now)
	return nil
}

// advanceToAckedStep skips unacked steps in the remap sequence,
// reporting whether one remains.
func (c *Coordinator) advanceToAckedStep() bool {
	p := c.promo
	for p.idx < len(p.steps) && !p.steps[p.idx].acked {
		p.idx++
	}
	return p.idx < len(p.steps)
}

// sendPromoRemap remaps the split host for the current promoted step
// under a fresh epoch.
func (c *Coordinator) sendPromoRemap(now vclock.Time) {
	p := c.promo
	step := p.steps[p.idx]
	c.epoch++
	p.span.Step(obs.StepRemapSent, now)
	if err := c.sendStep(c.cfg.SplitHost, proto.Remap{
		Epoch: c.epoch, Partitions: step.groups, Owner: step.to, Version: c.cfg.Map.Version(),
		Trace: p.span.Context(),
	}); err != nil {
		c.fail(fmt.Errorf("promotion remap: %w", err))
	}
}

// finishPromotion closes out a failover: latency histogram (virtual
// seconds, watchdog death to last remap ack), event, and — if the
// victim revived mid-flight — queueing its demotion and releasing
// whatever it still owns.
func (c *Coordinator) finishPromotion(now vclock.Time) error {
	p := c.promo
	promoted := 0
	for _, s := range p.steps {
		if s.acked {
			promoted += len(s.groups)
		}
	}
	p.span.SetAttr("promoted", strconv.Itoa(promoted))
	p.span.End(now)
	c.mPromotions.Inc()
	c.mPromoSecs.ObserveDuration(now.Sub(p.deathAt))
	c.events.Add(stats.Event{T: now, Node: p.victim, Kind: stats.EventPromote,
		Detail: fmt.Sprintf("%d groups failed over in %s", promoted, now.Sub(p.deathAt))})
	c.log.Info("promotion_complete", obs.F("victim", string(p.victim)),
		obs.FInt("groups", int64(promoted)), obs.F("latency", now.Sub(p.deathAt).String()))
	victim := p.victim
	c.promo = nil
	c.disarm()
	c.phase = relocIdle
	if info, ok := c.engines[victim]; ok && info.alive.Load() {
		c.queueDemote(victim)
		c.resumePartitions(victim, "revived during promotion")
	}
	c.becameIdle()
	return nil
}

// queueDemote sends a revived engine the Demote for groups failed over
// away from it while it was presumed dead, tracked until DemoteAck.
func (c *Coordinator) queueDemote(node partition.NodeID) {
	parts := c.pendingDemotes[node]
	if len(parts) == 0 {
		return
	}
	delete(c.pendingDemotes, node)
	c.epoch++
	c.demotes[c.epoch] = &demoteState{node: node, parts: parts}
	c.updateDemoteCount()
	c.log.Info("demote_sent", obs.F("engine", string(node)),
		obs.FInt("groups", int64(len(parts))), obs.FUint("epoch", c.epoch))
	if err := c.ep.Send(node, proto.Demote{Epoch: c.epoch, Groups: parts}); err != nil {
		c.fail(fmt.Errorf("demote %s: %w", node, err))
	}
}

// retryDemotes re-sends pending Demotes on the lb tick until
// acknowledged or abandoned, mirroring retryResumes.
func (c *Coordinator) retryDemotes() {
	for epoch, d := range c.demotes {
		d.attempts++
		if d.attempts > demoteMaxRetries {
			delete(c.demotes, epoch)
			c.updateDemoteCount()
			c.mUnresolved.Inc()
			c.fail(fmt.Errorf("demotion of %s (epoch %d) unacknowledged after %d attempts", d.node, epoch, d.attempts-1))
			c.becameIdle()
			continue
		}
		if err := c.ep.Send(d.node, proto.Demote{Epoch: epoch, Groups: d.parts}); err != nil {
			c.fail(fmt.Errorf("demote retry: %w", err))
		}
	}
}

// onDemoteAck completes a demotion.
func (c *Coordinator) onDemoteAck(m proto.DemoteAck) {
	d, ok := c.demotes[m.Epoch]
	if !ok {
		return // stale or duplicated
	}
	delete(c.demotes, m.Epoch)
	c.updateDemoteCount()
	c.mDemotions.Inc()
	c.events.Add(stats.Event{T: c.clock.Now(), Node: d.node, Kind: stats.EventDemote,
		Detail: fmt.Sprintf("%d groups dropped after failover", len(d.parts))})
	c.log.Info("demotion_complete", obs.F("engine", string(d.node)), obs.FInt("groups", int64(len(d.parts))))
	c.becameIdle()
}

// updateDemoteCount refreshes the accessor-visible demote counter.
func (c *Coordinator) updateDemoteCount() {
	c.demoteCount.Store(int64(len(c.demotes) + len(c.pendingDemotes)))
}

func (c *Coordinator) shutdown() {
	c.stopped = true
	if c.ticker != nil {
		c.ticker.Stop()
	}
	close(c.done)
}

// Done closes once the coordinator's handler has processed Stop; the
// harness waits on it before reading coordinator state.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Stop halts the coordinator's timer via its own handler.
func (c *Coordinator) Stop() {
	if c.ep != nil {
		//distqlint:allow senderrcheck: best-effort self-stop; a dead own endpoint is already stopped
		c.ep.Send(c.cfg.Node, proto.Stop{})
	}
}
