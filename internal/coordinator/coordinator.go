// Package coordinator implements the global coordinator (GC): it collects
// light-weight statistics from every query engine, evaluates the
// configured adaptation strategy on its load-balancing timer, and
// orchestrates the 8-step state relocation protocol and the active-disk
// forced spills (paper §2, §4.1, §5).
//
// Like the engines, the coordinator is event-driven and single-threaded:
// all messages (including its own timer) arrive through the transport's
// serial handler.
package coordinator

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Config parameterizes the coordinator.
type Config struct {
	Node partition.NodeID
	// SplitHost is the node running the split operators (the stream
	// generator machine); Pause/Remap messages go there.
	SplitHost partition.NodeID
	// Engines are the query engine nodes under management.
	Engines []partition.NodeID
	// Strategy decides relocations and forced spills.
	Strategy core.Strategy
	// Map is the master partition map; relocations update it.
	Map *partition.Map
	// LBInterval is the lb_timer period (virtual).
	LBInterval time.Duration
}

// engineInfo is the coordinator's view of one engine.
type engineInfo struct {
	last       proto.StatsReport
	haveReport bool
	prevOutput uint64 // output at the previous strategy evaluation
	memSeries  *stats.Series
}

// relocPhase tracks the protocol step of the in-flight relocation.
type relocPhase int

const (
	relocIdle relocPhase = iota
	relocWaitPtV
	relocWaitMarker
	relocWaitInstalled
	relocWaitRemapAck
	forceWaitSpillDone
)

// Coordinator is the global adaptation controller.
type Coordinator struct {
	cfg   Config
	clock vclock.Clock
	ep    transport.Endpoint

	engines map[partition.NodeID]*engineInfo
	events  *stats.EventLog

	epoch    uint64
	phase    relocPhase
	sender   partition.NodeID
	receiver partition.NodeID
	parts    []partition.ID
	started  vclock.Time
	span     *obs.Span

	reg           *obs.Registry
	tracer        *obs.Tracer
	mRelocations  *obs.Counter
	mAborted      *obs.Counter
	mForcedSpills *obs.Counter
	mTicks        *obs.Counter
	mRelocVSecs   *obs.Histogram

	quiesced      bool
	quiesceWaiter partition.NodeID

	ticker  *vclock.Ticker
	stopped bool
	// done closes when the serial handler has processed Stop, fencing
	// post-run state reads without wall-clock sleeps.
	done chan struct{}
}

// New builds a coordinator; Attach must be called before Start.
func New(cfg Config, clock vclock.Clock) (*Coordinator, error) {
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("coordinator: nil strategy")
	}
	if cfg.Map == nil {
		return nil, fmt.Errorf("coordinator: nil partition map")
	}
	if cfg.LBInterval <= 0 {
		cfg.LBInterval = 10 * time.Second
	}
	c := &Coordinator{
		cfg:     cfg,
		clock:   clock,
		engines: make(map[partition.NodeID]*engineInfo),
		events:  stats.NewEventLog(),
		reg:     obs.NewRegistry(),
		tracer:  obs.NewTracer(0),
		done:    make(chan struct{}),
	}
	for _, n := range cfg.Engines {
		c.engines[n] = &engineInfo{memSeries: stats.NewSeries(string(n))}
	}
	c.reg.Help("distq_coordinator_relocations_total", "completed state relocations")
	c.reg.Help("distq_coordinator_relocations_aborted_total", "relocations aborted before completion")
	c.reg.Help("distq_coordinator_forced_spills_total", "completed forced (coordinator-ordered) spills")
	c.reg.Help("distq_coordinator_lb_ticks_total", "load-balancing timer expirations")
	c.reg.Help("distq_coordinator_relocation_duration_vseconds", "virtual duration of completed relocations, CptV to RemapAck")
	c.reg.Help("distq_coordinator_engine_mem_bytes", "per-engine memory usage from the latest stats report")
	c.mRelocations = c.reg.Counter("distq_coordinator_relocations_total")
	c.mAborted = c.reg.Counter("distq_coordinator_relocations_aborted_total")
	c.mForcedSpills = c.reg.Counter("distq_coordinator_forced_spills_total")
	c.mTicks = c.reg.Counter("distq_coordinator_lb_ticks_total")
	c.mRelocVSecs = c.reg.Histogram("distq_coordinator_relocation_duration_vseconds", obs.VirtualDurationBuckets)
	return c, nil
}

// Registry exposes the coordinator's metrics registry (monitoring
// endpoints, transport instrumentation).
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Tracer exposes the coordinator's span tracer; every adaptation is
// recorded there as one span.
func (c *Coordinator) Tracer() *obs.Tracer { return c.tracer }

// Attach joins the coordinator to the network.
func (c *Coordinator) Attach(net transport.Network) error {
	ep, err := net.Attach(c.cfg.Node, c.Handle)
	if err != nil {
		return err
	}
	c.ep = ep
	return nil
}

// Start arms the load-balancing timer.
func (c *Coordinator) Start() error {
	if c.ep == nil {
		return fmt.Errorf("coordinator: not attached")
	}
	c.ticker = c.clock.NewTicker(c.cfg.LBInterval)
	self := c.cfg.Node
	go func() {
		for range c.ticker.C {
			if err := c.ep.Send(self, proto.Tick{Kind: proto.TickLB}); err != nil {
				return
			}
		}
	}()
	return nil
}

// Events exposes the coordinator's adaptation event log.
func (c *Coordinator) Events() *stats.EventLog { return c.events }

// MemSeries returns the recorded memory usage series of an engine.
func (c *Coordinator) MemSeries(node partition.NodeID) *stats.Series {
	if info, ok := c.engines[node]; ok {
		return info.memSeries
	}
	return nil
}

// Relocations reports completed relocations. Safe for concurrent use
// (e.g. from a monitoring endpoint).
func (c *Coordinator) Relocations() int { return int(c.mRelocations.Value()) }

// ForcedSpills reports completed forced spills. Safe for concurrent use.
func (c *Coordinator) ForcedSpills() int { return int(c.mForcedSpills.Value()) }

// Handle is the coordinator's transport handler.
func (c *Coordinator) Handle(from partition.NodeID, msg proto.Message) {
	if c.stopped {
		return
	}
	var err error
	switch m := msg.(type) {
	case proto.Hello:
		// Engines are statically configured; Hello is informational.
	case proto.StatsReport:
		c.onStats(m)
	case proto.Tick:
		err = c.onTick()
	case proto.PtV:
		err = c.onPtV(m)
	case proto.MarkerAck:
		err = c.onMarkerAck(m)
	case proto.Installed:
		err = c.onInstalled(m)
	case proto.RemapAck:
		err = c.onRemapAck(m)
	case proto.SpillDone:
		c.onSpillDone(m)
	case proto.Quiesce:
		err = c.onQuiesce(from)
	case proto.Stop:
		c.shutdown()
	default:
		err = fmt.Errorf("unexpected message %T from %s", msg, from)
	}
	if err != nil {
		log.Printf("coordinator: %v", err)
	}
}

func (c *Coordinator) onStats(m proto.StatsReport) {
	info, ok := c.engines[m.Node]
	if !ok {
		return
	}
	info.last = m
	info.haveReport = true
	info.memSeries.Add(c.clock.Now(), float64(m.MemBytes))
	c.reg.Gauge("distq_coordinator_engine_mem_bytes", obs.L("engine", string(m.Node))).Set(float64(m.MemBytes))
}

// onQuiesce stops new adaptations and acknowledges once idle.
func (c *Coordinator) onQuiesce(from partition.NodeID) error {
	c.quiesced = true
	if c.phase == relocIdle {
		return c.ep.Send(from, proto.QuiesceAck{})
	}
	c.quiesceWaiter = from
	return nil
}

// becameIdle notifies a pending quiesce waiter.
func (c *Coordinator) becameIdle() {
	if c.quiesceWaiter == "" {
		return
	}
	waiter := c.quiesceWaiter
	c.quiesceWaiter = ""
	if err := c.ep.Send(waiter, proto.QuiesceAck{}); err != nil {
		log.Printf("coordinator: quiesce ack: %v", err)
	}
}

// onTick evaluates the strategy (Algorithms 1 and 2, events at GC). Only
// one adaptation runs at a time.
func (c *Coordinator) onTick() error {
	c.mTicks.Inc()
	if c.phase != relocIdle || c.quiesced {
		return nil
	}
	loads := make([]core.EngineLoad, 0, len(c.engines))
	for node, info := range c.engines {
		if !info.haveReport {
			return nil // wait until every engine has reported once
		}
		loads = append(loads, core.EngineLoad{
			Node:        node,
			MemBytes:    info.last.MemBytes,
			Groups:      info.last.Groups,
			OutputDelta: info.last.Output - info.prevOutput,
		})
	}
	action := c.cfg.Strategy.Decide(loads, c.clock.Now())
	// Productivity rates are per evaluation period: advance the window.
	for _, info := range c.engines {
		info.prevOutput = info.last.Output
	}
	if action == nil {
		return nil
	}
	switch {
	case action.Relocate != nil:
		return c.startRelocation(action.Relocate)
	case action.ForceSpill != nil:
		return c.startForcedSpill(action.ForceSpill)
	}
	return nil
}

// startRelocation runs protocol step 1.
func (c *Coordinator) startRelocation(r *core.Relocation) error {
	if _, ok := c.engines[r.Sender]; !ok {
		return fmt.Errorf("relocation sender %s unknown", r.Sender)
	}
	if _, ok := c.engines[r.Receiver]; !ok {
		return fmt.Errorf("relocation receiver %s unknown", r.Receiver)
	}
	c.epoch++
	c.phase = relocWaitPtV
	c.sender, c.receiver = r.Sender, r.Receiver
	c.started = c.clock.Now()
	c.span = c.tracer.Start(obs.SpanRelocation, string(c.cfg.Node), c.started)
	c.span.SetAttr("epoch", strconv.FormatUint(c.epoch, 10))
	c.span.SetAttr("sender", string(r.Sender))
	c.span.SetAttr("receiver", string(r.Receiver))
	c.span.SetAttr("amount_bytes", strconv.FormatInt(r.Amount, 10))
	c.span.Step(obs.StepCptV, c.started)
	return c.ep.Send(r.Sender, proto.CptV{Epoch: c.epoch, Amount: r.Amount, Receiver: r.Receiver})
}

func (c *Coordinator) startForcedSpill(f *core.ForcedSpill) error {
	if _, ok := c.engines[f.Node]; !ok {
		return fmt.Errorf("forced-spill target %s unknown", f.Node)
	}
	c.phase = forceWaitSpillDone
	c.sender = f.Node
	c.span = c.tracer.Start(obs.SpanForcedSpill, string(c.cfg.Node), c.clock.Now())
	c.span.SetAttr("node", string(f.Node))
	c.span.SetAttr("amount_bytes", strconv.FormatInt(f.Amount, 10))
	return c.ep.Send(f.Node, proto.ForceSpill{Amount: f.Amount})
}

// onPtV runs protocol step 3: pause the moving partitions at the split
// host. An empty list aborts the adaptation.
func (c *Coordinator) onPtV(m proto.PtV) error {
	if c.phase != relocWaitPtV || m.Epoch != c.epoch {
		return nil // stale
	}
	now := c.clock.Now()
	c.span.Step(obs.StepPtV, now)
	if len(m.Partitions) == 0 {
		c.abortAdaptation(now, "empty ptv")
		return nil
	}
	c.parts = m.Partitions
	c.phase = relocWaitMarker
	c.span.SetAttr("partitions", strconv.Itoa(len(m.Partitions)))
	c.span.Step(obs.StepPause, now)
	return c.ep.Send(c.cfg.SplitHost, proto.Pause{Epoch: c.epoch, Partitions: m.Partitions, Owner: c.sender})
}

// abortAdaptation closes the in-flight span as aborted and returns the
// coordinator to idle.
func (c *Coordinator) abortAdaptation(vt vclock.Time, reason string) {
	c.span.Abort(vt, reason)
	c.span = nil
	c.mAborted.Inc()
	c.phase = relocIdle
	c.parts = nil
	c.becameIdle()
}

// onMarkerAck runs protocol step 5: the sender drained its data path;
// order the state transfer.
func (c *Coordinator) onMarkerAck(m proto.MarkerAck) error {
	if c.phase != relocWaitMarker || m.Epoch != c.epoch || m.Node != c.sender {
		return nil
	}
	now := c.clock.Now()
	c.span.Step(obs.StepMarkerAck, now)
	c.phase = relocWaitInstalled
	c.span.Step(obs.StepSendStates, now)
	return c.ep.Send(c.sender, proto.SendStates{Epoch: c.epoch, Partitions: c.parts, Receiver: c.receiver})
}

// onInstalled runs protocol step 7: commit the new ownership to the
// master map and remap the split host.
func (c *Coordinator) onInstalled(m proto.Installed) error {
	if c.phase != relocWaitInstalled || m.Epoch != c.epoch || m.Node != c.receiver {
		return nil
	}
	now := c.clock.Now()
	c.span.Step(obs.StepInstalled, now)
	version, err := c.cfg.Map.Move(c.parts, c.receiver)
	if err != nil {
		c.abortAdaptation(now, "map commit: "+err.Error())
		return fmt.Errorf("commit relocation: %w", err)
	}
	c.phase = relocWaitRemapAck
	c.span.Step(obs.StepRemap, now)
	return c.ep.Send(c.cfg.SplitHost, proto.Remap{
		Epoch: c.epoch, Partitions: c.parts, Owner: c.receiver, Version: version,
	})
}

// onRemapAck completes the relocation (step 8).
func (c *Coordinator) onRemapAck(m proto.RemapAck) error {
	if c.phase != relocWaitRemapAck || m.Epoch != c.epoch {
		return nil
	}
	now := c.clock.Now()
	c.span.Step(obs.StepRemapAck, now)
	c.span.End(now)
	c.span = nil
	c.mRelocations.Inc()
	c.mRelocVSecs.ObserveDuration(now.Sub(c.started))
	c.events.Add(stats.Event{
		T: now, Node: c.sender, Kind: stats.EventRelocation,
		Detail: fmt.Sprintf("%d groups %s->%s in %s", len(c.parts), c.sender, c.receiver, now.Sub(c.started)),
	})
	c.phase = relocIdle
	c.parts = nil
	c.becameIdle()
	return nil
}

func (c *Coordinator) onSpillDone(m proto.SpillDone) {
	if c.phase != forceWaitSpillDone || m.Node != c.sender {
		return
	}
	c.span.SetAttr("spilled_bytes", strconv.FormatInt(m.Bytes, 10))
	c.span.End(c.clock.Now())
	c.span = nil
	c.mForcedSpills.Inc()
	c.events.Add(stats.Event{
		T: c.clock.Now(), Node: m.Node, Kind: stats.EventForcedSpill,
		Detail: fmt.Sprintf("%d bytes", m.Bytes),
	})
	c.phase = relocIdle
	c.becameIdle()
}

func (c *Coordinator) shutdown() {
	c.stopped = true
	if c.ticker != nil {
		c.ticker.Stop()
	}
	close(c.done)
}

// Done closes once the coordinator's handler has processed Stop; the
// harness waits on it before reading coordinator state.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Stop halts the coordinator's timer via its own handler.
func (c *Coordinator) Stop() {
	if c.ep != nil {
		_ = c.ep.Send(c.cfg.Node, proto.Stop{})
	}
}
