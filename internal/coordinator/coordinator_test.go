package coordinator

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/proto"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// peer collects messages a node receives.
type peer struct {
	ep   transport.Endpoint
	msgs chan proto.Message
}

func newPeer(t *testing.T, net transport.Network, node partition.NodeID) *peer {
	t.Helper()
	p := &peer{msgs: make(chan proto.Message, 256)}
	ep, err := net.Attach(node, func(_ partition.NodeID, msg proto.Message) { p.msgs <- msg })
	if err != nil {
		t.Fatal(err)
	}
	p.ep = ep
	return p
}

func expect[T proto.Message](t *testing.T, p *peer) T {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m := <-p.msgs:
			if v, ok := m.(T); ok {
				return v
			}
		case <-deadline:
			var zero T
			t.Fatalf("timed out waiting for %T", zero)
			return zero
		}
	}
}

func expectNothing(t *testing.T, p *peer) {
	t.Helper()
	select {
	case m := <-p.msgs:
		t.Fatalf("unexpected message %T: %+v", m, m)
	case <-time.After(50 * time.Millisecond):
	}
}

type rig struct {
	coord *Coordinator
	m1    *peer
	m2    *peer
	gen   *peer
	pmap  *partition.Map
}

func newRig(t *testing.T, strategy core.Strategy) *rig {
	t.Helper()
	net := transport.NewInproc()
	t.Cleanup(func() { net.Close() })
	engines := []partition.NodeID{"m1", "m2"}
	pmap, err := partition.NewMap(8, partition.UniformAssign(engines))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{
		Node:       "gc",
		SplitHost:  "gen",
		Engines:    engines,
		Strategy:   strategy,
		Map:        pmap,
		LBInterval: time.Hour, // ticks driven explicitly
	}, vclock.NewManual())
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Attach(net); err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{
		coord: coord,
		m1:    newPeer(t, net, "m1"),
		m2:    newPeer(t, net, "m2"),
		gen:   newPeer(t, net, "gen"),
		pmap:  pmap,
	}
}

func (r *rig) report(t *testing.T, node partition.NodeID, mem int64, output uint64) {
	t.Helper()
	var from *peer
	if node == "m1" {
		from = r.m1
	} else {
		from = r.m2
	}
	if err := from.ep.Send("gc", proto.StatsReport{Node: node, MemBytes: mem, Groups: 4, Output: output}); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) tick(t *testing.T) {
	t.Helper()
	if err := r.gen.ep.Send("gc", proto.Tick{Kind: proto.TickLB}); err != nil {
		t.Fatal(err)
	}
}

func lazy() core.Strategy {
	return core.NewLazyDisk(core.RelocationConfig{Threshold: 0.8, MinGap: 0})
}

func TestCoordinatorWaitsForAllReports(t *testing.T) {
	r := newRig(t, lazy())
	r.report(t, "m1", 1000, 0)
	r.tick(t) // m2 has not reported: no action
	expectNothing(t, r.m1)
}

func TestFullRelocationProtocol(t *testing.T) {
	r := newRig(t, lazy())
	r.report(t, "m1", 1000, 0)
	r.report(t, "m2", 100, 0)
	r.tick(t)

	// Step 1: sender gets cptv.
	cptv := expect[proto.CptV](t, r.m1)
	if cptv.Amount != 450 || cptv.Receiver != "m2" {
		t.Fatalf("CptV = %+v", cptv)
	}
	// Step 2: sender answers ptv.
	parts := []partition.ID{0, 2}
	r.m1.ep.Send("gc", proto.PtV{Epoch: cptv.Epoch, Node: "m1", Partitions: parts})
	// Step 3: split host gets pause.
	pause := expect[proto.Pause](t, r.gen)
	if pause.Owner != "m1" || len(pause.Partitions) != 2 {
		t.Fatalf("Pause = %+v", pause)
	}
	// Step 4: sender acks the marker (relayed by the split host in the
	// real system).
	r.m1.ep.Send("gc", proto.MarkerAck{Epoch: cptv.Epoch, Node: "m1"})
	// Step 5: sender is told to ship.
	ss := expect[proto.SendStates](t, r.m1)
	if ss.Receiver != "m2" {
		t.Fatalf("SendStates = %+v", ss)
	}
	// Step 6: receiver installed.
	r.m2.ep.Send("gc", proto.Installed{Epoch: cptv.Epoch, Node: "m2"})
	// Step 7: split host remapped; master map committed.
	remap := expect[proto.Remap](t, r.gen)
	if remap.Owner != "m2" {
		t.Fatalf("Remap = %+v", remap)
	}
	if owner, _ := r.pmap.Owner(0); owner != "m2" {
		t.Fatal("master map not committed")
	}
	// Step 8: ack completes.
	r.gen.ep.Send("gc", proto.RemapAck{Epoch: cptv.Epoch})
	waitFor(t, func() bool { return r.coord.Relocations() == 1 })
	if r.coord.Events().Count("relocation") != 1 {
		t.Fatal("relocation event missing")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOnlyOneAdaptationInFlight(t *testing.T) {
	r := newRig(t, lazy())
	r.report(t, "m1", 1000, 0)
	r.report(t, "m2", 100, 0)
	r.tick(t)
	expect[proto.CptV](t, r.m1)
	// A second tick while the relocation is in flight must not start
	// another adaptation.
	r.tick(t)
	expectNothing(t, r.m1)
}

func TestEmptyPtVAbortsRelocation(t *testing.T) {
	r := newRig(t, lazy())
	r.report(t, "m1", 1000, 0)
	r.report(t, "m2", 100, 0)
	r.tick(t)
	cptv := expect[proto.CptV](t, r.m1)
	r.m1.ep.Send("gc", proto.PtV{Epoch: cptv.Epoch, Node: "m1", Partitions: nil})
	// The coordinator returns to idle: a new tick starts a new attempt.
	r.tick(t)
	expect[proto.CptV](t, r.m1)
}

func TestStaleProtocolMessagesIgnored(t *testing.T) {
	r := newRig(t, lazy())
	r.report(t, "m1", 1000, 0)
	r.report(t, "m2", 100, 0)
	r.tick(t)
	cptv := expect[proto.CptV](t, r.m1)
	// Stale/foreign messages must not advance the protocol.
	r.m1.ep.Send("gc", proto.MarkerAck{Epoch: cptv.Epoch, Node: "m1"}) // wrong phase
	r.m2.ep.Send("gc", proto.Installed{Epoch: cptv.Epoch, Node: "m2"}) // wrong phase
	r.m1.ep.Send("gc", proto.PtV{Epoch: cptv.Epoch + 9, Node: "m1", Partitions: []partition.ID{0}})
	expectNothing(t, r.gen)
}

func TestForcedSpillFlow(t *testing.T) {
	strategy := core.NewActiveDisk(core.ActiveDiskConfig{
		Relocation:     core.RelocationConfig{Threshold: 0.5, MinGap: 0},
		Lambda:         2,
		ForcedFraction: 0.5,
	})
	r := newRig(t, strategy)
	// Memory balanced, productivity skewed: m2 gets forced to spill.
	r.report(t, "m1", 1000, 1000)
	r.report(t, "m2", 900, 10)
	r.tick(t)
	fs := expect[proto.ForceSpill](t, r.m2)
	if fs.Amount != 450 {
		t.Fatalf("ForceSpill = %+v", fs)
	}
	r.m2.ep.Send("gc", proto.SpillDone{Node: "m2", Bytes: 450})
	waitFor(t, func() bool { return r.coord.ForcedSpills() == 1 })
	if r.coord.Events().Count("forced-spill") != 1 {
		t.Fatal("forced-spill event missing")
	}
}

func TestQuiesceImmediateWhenIdle(t *testing.T) {
	r := newRig(t, lazy())
	r.gen.ep.Send("gc", proto.Quiesce{})
	expect[proto.QuiesceAck](t, r.gen)
	// After quiesce, no new adaptations start.
	r.report(t, "m1", 1000, 0)
	r.report(t, "m2", 100, 0)
	r.tick(t)
	expectNothing(t, r.m1)
}

func TestQuiesceWaitsForInFlightRelocation(t *testing.T) {
	r := newRig(t, lazy())
	r.report(t, "m1", 1000, 0)
	r.report(t, "m2", 100, 0)
	r.tick(t)
	cptv := expect[proto.CptV](t, r.m1)

	r.gen.ep.Send("gc", proto.Quiesce{})
	expectNothing(t, r.gen) // not idle yet

	// Finish the protocol.
	r.m1.ep.Send("gc", proto.PtV{Epoch: cptv.Epoch, Node: "m1", Partitions: []partition.ID{0}})
	expect[proto.Pause](t, r.gen)
	r.m1.ep.Send("gc", proto.MarkerAck{Epoch: cptv.Epoch, Node: "m1"})
	expect[proto.SendStates](t, r.m1)
	r.m2.ep.Send("gc", proto.Installed{Epoch: cptv.Epoch, Node: "m2"})
	expect[proto.Remap](t, r.gen)
	r.gen.ep.Send("gc", proto.RemapAck{Epoch: cptv.Epoch})
	expect[proto.QuiesceAck](t, r.gen)
}

func TestMemSeriesRecorded(t *testing.T) {
	r := newRig(t, lazy())
	r.report(t, "m1", 123, 0)
	waitFor(t, func() bool { return r.coord.MemSeries("m1").Len() == 1 })
	if got := r.coord.MemSeries("m1").Last(); got != 123 {
		t.Fatalf("mem series last = %v", got)
	}
	if r.coord.MemSeries("nope") != nil {
		t.Fatal("series for unknown engine")
	}
}

func TestNewValidation(t *testing.T) {
	pmap, _ := partition.NewMap(4, partition.UniformAssign([]partition.NodeID{"m1"}))
	if _, err := New(Config{Strategy: nil, Map: pmap}, vclock.NewManual()); err == nil {
		t.Fatal("nil strategy accepted")
	}
	if _, err := New(Config{Strategy: core.NoAdapt{}, Map: nil}, vclock.NewManual()); err == nil {
		t.Fatal("nil map accepted")
	}
}

func TestStartRequiresAttach(t *testing.T) {
	pmap, _ := partition.NewMap(4, partition.UniformAssign([]partition.NodeID{"m1"}))
	c, err := New(Config{Strategy: core.NoAdapt{}, Map: pmap}, vclock.NewManual())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("Start before Attach succeeded")
	}
}

func TestProductivityWindowAdvances(t *testing.T) {
	// R is computed per evaluation period: the coordinator must use
	// output deltas, not cumulative output.
	strategy := core.NewActiveDisk(core.ActiveDiskConfig{
		Relocation:     core.RelocationConfig{Threshold: 0.1, MinGap: 0},
		Lambda:         2,
		ForcedFraction: 0.5,
	})
	r := newRig(t, strategy)
	r.report(t, "m1", 1000, 1000)
	r.report(t, "m2", 990, 900)
	r.tick(t) // deltas 1000 vs 900: ratio 1.1 < λ, no action
	expectNothing(t, r.m2)
	// Next period: m1 produced 1000 more, m2 only 10 more.
	r.report(t, "m1", 1000, 2000)
	r.report(t, "m2", 990, 910)
	r.tick(t)
	fs := expect[proto.ForceSpill](t, r.m2)
	if fs.Amount != 495 {
		t.Fatalf("ForceSpill amount = %d", fs.Amount)
	}
}

// dirNet wraps a Network with an AddNode recorder, standing in for the
// TCP transport's directory in dynamic-join tests.
type dirNet struct {
	transport.Network
	mu    sync.Mutex
	added map[partition.NodeID]string
}

func (d *dirNet) AddNode(node partition.NodeID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.added == nil {
		d.added = make(map[partition.NodeID]string)
	}
	d.added[node] = addr
}

func (d *dirNet) addedAddr(node partition.NodeID) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.added[node]
}

func TestJoinRequestAddrDisseminated(t *testing.T) {
	net := &dirNet{Network: transport.NewInproc()}
	t.Cleanup(func() { net.Close() })
	engines := []partition.NodeID{"m1", "m2"}
	pmap, err := partition.NewMap(8, partition.UniformAssign(engines))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{
		Node: "gc", SplitHost: "gen", Engines: engines,
		Strategy: core.NoAdapt{}, Map: pmap, LBInterval: time.Hour,
	}, vclock.NewManual())
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Attach(net); err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	m1 := newPeer(t, net, "m1")
	m2 := newPeer(t, net, "m2")
	gen := newPeer(t, net, "gen")
	m3 := newPeer(t, net, "m3")

	if err := m3.ep.Send("gc", proto.JoinRequest{Node: "m3", Addr: "127.0.0.1:7103"}); err != nil {
		t.Fatal(err)
	}
	ack := expect[proto.JoinAck](t, m3)
	if !ack.Accepted {
		t.Fatalf("join refused: %s", ack.Reason)
	}
	// The coordinator's own directory is extended before the ack so the
	// ack itself can route on a directory-based transport.
	if got := net.addedAddr("m3"); got != "127.0.0.1:7103" {
		t.Fatalf("coordinator AddNode(m3) = %q, want 127.0.0.1:7103", got)
	}
	// Split host and both static engines learn the address.
	for name, p := range map[string]*peer{"gen": gen, "m1": m1, "m2": m2} {
		ma := expect[proto.MemberAddr](t, p)
		if ma.Node != "m3" || ma.Addr != "127.0.0.1:7103" {
			t.Fatalf("%s got MemberAddr %+v", name, ma)
		}
	}
	// A later joiner receives a replay of m3's address.
	m4 := newPeer(t, net, "m4")
	if err := m4.ep.Send("gc", proto.JoinRequest{Node: "m4", Addr: "127.0.0.1:7104"}); err != nil {
		t.Fatal(err)
	}
	replay := expect[proto.MemberAddr](t, m4)
	if replay.Node != "m3" || replay.Addr != "127.0.0.1:7103" {
		t.Fatalf("replay to m4 = %+v, want m3's address", replay)
	}
	// m3 (and everyone else) hears about m4; a duplicate JoinRequest
	// then re-acks without re-broadcasting (idempotent per node+addr).
	ma := expect[proto.MemberAddr](t, m3)
	if ma.Node != "m4" {
		t.Fatalf("m3 got MemberAddr %+v, want m4", ma)
	}
	expect[proto.MemberAddr](t, gen) // m4's broadcast
	if err := m3.ep.Send("gc", proto.JoinRequest{Node: "m3", Addr: "127.0.0.1:7103"}); err != nil {
		t.Fatal(err)
	}
	expect[proto.JoinAck](t, m3)
	expectNothing(t, gen)
}
