package coordinator

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/proto"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// FuzzCoordinatorProtocol replays byte-decoded protocol traffic
// synchronously through Coordinator.Handle — two bytes per message, one
// selecting the message type, one the sender/epoch/partition — and
// asserts the safety invariant every adaptation strategy leans on: the
// master partition map always assigns every partition to a configured
// engine, whatever order (or nonsense) the protocol messages arrive in.
//
// make check runs this as a short smoke (`make fuzz-smoke`); the grown
// corpus lives in testdata/fuzz/FuzzCoordinatorProtocol.
func FuzzCoordinatorProtocol(f *testing.F) {
	// Seeds: a stats/tick round, a full relocation handshake, a forced
	// spill + quiesce, epoch/partition garbage, a join/report/leave
	// membership round, a replication/promotion ack mix, and a
	// spilled-failover round (segment-bearing reports with spilled
	// replication lag, then promote/demote acks).
	f.Add([]byte{0, 0, 0, 1, 1, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 0, 3, 64, 3, 65, 2, 64, 2, 67, 4, 64, 4, 65, 5, 64})
	f.Add([]byte{6, 0, 8, 0, 7, 1, 9, 3})
	f.Add([]byte{2, 255, 2, 14, 4, 192, 5, 255, 3, 0, 10, 0, 0, 1})
	f.Add([]byte{11, 2, 15, 2, 1, 0, 1, 0, 12, 2, 1, 0, 11, 2})
	f.Add([]byte{15, 0, 15, 1, 1, 0, 13, 64, 14, 65, 12, 0, 1, 0, 3, 0, 4, 1, 5, 0})
	f.Add([]byte{15, 9, 15, 25, 6, 9, 15, 8, 1, 0, 13, 72, 13, 73, 14, 64, 15, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		coord, pmap := newFuzzRig(t)
		engines := []partition.NodeID{"m1", "m2"}
		// members adds the runtime joiner m3: membership and replication
		// messages may come from (or be about) a node the static config
		// never listed.
		members := []partition.NodeID{"m1", "m2", "m3"}
		if len(data) > 256 {
			data = data[:256]
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, sel := data[i], data[i+1]
			from := engines[int(sel&1)]
			node := members[int(sel)%3]
			epoch := uint64(sel >> 6)
			var msg proto.Message
			switch op % 16 {
			case 0:
				msg = proto.StatsReport{Node: from, MemBytes: int64(sel) * 16, Groups: 4, Output: uint64(i)}
			case 1:
				msg = proto.Tick{Kind: proto.TickLB}
			case 2:
				// Partition may be out of range (the map has 8).
				msg = proto.PtV{Epoch: epoch, Node: from, Partitions: []partition.ID{partition.ID(sel % 16)}}
			case 3:
				msg = proto.MarkerAck{Epoch: epoch, Node: node}
			case 4:
				msg = proto.Installed{Epoch: epoch, Node: node}
			case 5:
				msg = proto.RemapAck{Epoch: epoch}
			case 6:
				msg = proto.SpillDone{Node: from, Bytes: int64(sel)}
			case 7:
				msg = proto.Hello{Node: from, Kind: proto.KindEngine}
			case 8:
				from = "gen"
				msg = proto.Quiesce{}
			case 9:
				// Not a coordinator message: must be ignored, not crash.
				msg = proto.ResultCount{Delta: uint64(sel)}
			case 10:
				msg = proto.Stop{}
			case 11:
				// m3 is a genuine runtime joiner; m1/m2 re-ack; a node
				// that already left must be refused.
				msg = proto.JoinRequest{Node: node}
			case 12:
				msg = proto.Leave{Node: node}
			case 13:
				msg = proto.PromoteAck{Epoch: epoch, Node: node, Installed: sel&8 != 0}
			case 14:
				msg = proto.DemoteAck{Epoch: epoch, Node: node}
			case 15:
				// Replication-rich report: lag for a possibly out-of-range
				// group, an arbitrary replica-map version, and — when the
				// selector's segment bit is set — disk segments whose bytes
				// dominate the group's lag (a spilled group awaiting its
				// seed), so the settled fence and failover paths see
				// segment-bearing reports too.
				report := proto.StatsReport{Node: node, MemBytes: int64(sel) * 8, Groups: 2,
					ReplVersion: uint64(sel >> 4),
					ReplLag:     map[partition.ID]int64{partition.ID(sel % 16): int64(sel)},
				}
				if sel&8 != 0 {
					report.DiskSegments = int(sel >> 5)
					report.SpilledBytes = int64(sel) * 64
					report.ReplLag[partition.ID(sel%16)] += report.SpilledBytes
				}
				msg = report
			}
			coord.Handle(from, msg)
			for id := 0; id < pmap.N(); id++ {
				owner, err := pmap.Owner(partition.ID(id))
				if err != nil {
					t.Fatalf("op %d (%T): partition %d: %v", i/2, msg, id, err)
				}
				if owner != "m1" && owner != "m2" && owner != "m3" {
					t.Fatalf("op %d (%T): partition %d owned by unknown node %q", i/2, msg, id, owner)
				}
			}
		}
	})
}

// newFuzzRig builds a coordinator whose handler the fuzz target calls
// directly (synchronously, single-threaded): the timer is never armed
// and the peers discard replies, so no goroutine touches the
// coordinator concurrently and every input replays deterministically.
func newFuzzRig(t *testing.T) (*Coordinator, *partition.Map) {
	t.Helper()
	net := transport.NewInproc()
	t.Cleanup(func() { net.Close() })
	engines := []partition.NodeID{"m1", "m2"}
	pmap, err := partition.NewMap(8, partition.UniformAssign(engines))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{
		Node:       "gc",
		SplitHost:  "gen",
		Engines:    engines,
		Strategy:   lazy(),
		Map:        pmap,
		LBInterval: time.Hour,
		Replicate:  true,
	}, vclock.NewManual())
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Attach(net); err != nil {
		t.Fatal(err)
	}
	for _, n := range []partition.NodeID{"m1", "m2", "m3", "gen"} {
		if _, err := net.Attach(n, func(partition.NodeID, proto.Message) {}); err != nil {
			t.Fatal(err)
		}
	}
	return coord, pmap
}

// TestProtocolRobustToRandomMessages bombards the coordinator with
// randomized, partly nonsensical protocol traffic and verifies two safety
// properties: the master partition map always assigns every partition to
// a configured engine, and the coordinator never wedges (it still answers
// a final quiesce).
func TestProtocolRobustToRandomMessages(t *testing.T) {
	r := newRig(t, lazy())
	rng := rand.New(rand.NewSource(4))
	engines := []partition.NodeID{"m1", "m2"}
	peers := map[partition.NodeID]*peer{"m1": r.m1, "m2": r.m2}

	r.report(t, "m1", 1000, 100)
	r.report(t, "m2", 100, 10)

	for i := 0; i < 400; i++ {
		from := engines[rng.Intn(len(engines))]
		epoch := uint64(rng.Intn(4))
		var msg proto.Message
		switch rng.Intn(8) {
		case 0:
			msg = proto.StatsReport{Node: from, MemBytes: int64(rng.Intn(2000)), Groups: 4, Output: uint64(i)}
		case 1:
			msg = proto.Tick{Kind: proto.TickLB}
		case 2:
			parts := []partition.ID{partition.ID(rng.Intn(12))} // may be out of range (map has 8)
			msg = proto.PtV{Epoch: epoch, Node: from, Partitions: parts}
		case 3:
			msg = proto.MarkerAck{Epoch: epoch, Node: from}
		case 4:
			msg = proto.Installed{Epoch: epoch, Node: from}
		case 5:
			msg = proto.RemapAck{Epoch: epoch}
		case 6:
			msg = proto.SpillDone{Node: from, Bytes: int64(rng.Intn(1000))}
		case 7:
			msg = proto.Hello{Node: from, Kind: proto.KindEngine}
		}
		if err := peers[from].ep.Send("gc", msg); err != nil {
			t.Fatal(err)
		}
	}

	// Give the handler a moment to chew through the queue, then check
	// liveness via quiesce and map safety.
	time.Sleep(50 * time.Millisecond)
	r.gen.ep.Send("gc", proto.Quiesce{})
	// The protocol may be legitimately mid-flight from the random PtVs;
	// feed it completions until the quiesce ack arrives.
	deadline := time.After(5 * time.Second)
	for {
		// Unblock any phase the random traffic may have reached.
		for _, from := range engines {
			for epoch := uint64(1); epoch <= 4; epoch++ {
				peers[from].ep.Send("gc", proto.MarkerAck{Epoch: epoch, Node: from})
				peers[from].ep.Send("gc", proto.Installed{Epoch: epoch, Node: from})
				peers[from].ep.Send("gc", proto.RemapAck{Epoch: epoch})
				peers[from].ep.Send("gc", proto.SpillDone{Node: from})
			}
		}
		select {
		case m := <-r.gen.msgs:
			if _, ok := m.(proto.QuiesceAck); ok {
				goto done
			}
		case <-deadline:
			t.Fatal("coordinator wedged: no quiesce ack")
		}
	}
done:
	owners := map[partition.NodeID]bool{"m1": true, "m2": true}
	for id := 0; id < r.pmap.N(); id++ {
		o, err := r.pmap.Owner(partition.ID(id))
		if err != nil {
			t.Fatal(err)
		}
		if !owners[o] {
			t.Fatalf("partition %d owned by unknown node %q", id, o)
		}
	}
}

// TestQuiesceDuringForcedSpill verifies the quiesce fence also waits for
// an in-flight forced spill.
func TestQuiesceDuringForcedSpill(t *testing.T) {
	strategy := core.NewActiveDisk(core.ActiveDiskConfig{
		Relocation:     core.RelocationConfig{Threshold: 0.5, MinGap: 0},
		Lambda:         2,
		ForcedFraction: 0.5,
	})
	r := newRig(t, strategy)
	r.report(t, "m1", 1000, 1000)
	r.report(t, "m2", 900, 1)
	r.tick(t)
	fs := expect[proto.ForceSpill](t, r.m2)
	if fs.Amount <= 0 {
		t.Fatalf("ForceSpill = %+v", fs)
	}
	r.gen.ep.Send("gc", proto.Quiesce{})
	expectNothing(t, r.gen) // still waiting for SpillDone
	r.m2.ep.Send("gc", proto.SpillDone{Node: "m2", Bytes: fs.Amount})
	expect[proto.QuiesceAck](t, r.gen)
}
