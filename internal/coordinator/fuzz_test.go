package coordinator

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/proto"
)

// TestProtocolRobustToRandomMessages bombards the coordinator with
// randomized, partly nonsensical protocol traffic and verifies two safety
// properties: the master partition map always assigns every partition to
// a configured engine, and the coordinator never wedges (it still answers
// a final quiesce).
func TestProtocolRobustToRandomMessages(t *testing.T) {
	r := newRig(t, lazy())
	rng := rand.New(rand.NewSource(4))
	engines := []partition.NodeID{"m1", "m2"}
	peers := map[partition.NodeID]*peer{"m1": r.m1, "m2": r.m2}

	r.report(t, "m1", 1000, 100)
	r.report(t, "m2", 100, 10)

	for i := 0; i < 400; i++ {
		from := engines[rng.Intn(len(engines))]
		epoch := uint64(rng.Intn(4))
		var msg proto.Message
		switch rng.Intn(8) {
		case 0:
			msg = proto.StatsReport{Node: from, MemBytes: int64(rng.Intn(2000)), Groups: 4, Output: uint64(i)}
		case 1:
			msg = proto.Tick{Kind: proto.TickLB}
		case 2:
			parts := []partition.ID{partition.ID(rng.Intn(12))} // may be out of range (map has 8)
			msg = proto.PtV{Epoch: epoch, Node: from, Partitions: parts}
		case 3:
			msg = proto.MarkerAck{Epoch: epoch, Node: from}
		case 4:
			msg = proto.Installed{Epoch: epoch, Node: from}
		case 5:
			msg = proto.RemapAck{Epoch: epoch}
		case 6:
			msg = proto.SpillDone{Node: from, Bytes: int64(rng.Intn(1000))}
		case 7:
			msg = proto.Hello{Node: from, Kind: proto.KindEngine}
		}
		if err := peers[from].ep.Send("gc", msg); err != nil {
			t.Fatal(err)
		}
	}

	// Give the handler a moment to chew through the queue, then check
	// liveness via quiesce and map safety.
	time.Sleep(50 * time.Millisecond)
	r.gen.ep.Send("gc", proto.Quiesce{})
	// The protocol may be legitimately mid-flight from the random PtVs;
	// feed it completions until the quiesce ack arrives.
	deadline := time.After(5 * time.Second)
	for {
		// Unblock any phase the random traffic may have reached.
		for _, from := range engines {
			for epoch := uint64(1); epoch <= 4; epoch++ {
				peers[from].ep.Send("gc", proto.MarkerAck{Epoch: epoch, Node: from})
				peers[from].ep.Send("gc", proto.Installed{Epoch: epoch, Node: from})
				peers[from].ep.Send("gc", proto.RemapAck{Epoch: epoch})
				peers[from].ep.Send("gc", proto.SpillDone{Node: from})
			}
		}
		select {
		case m := <-r.gen.msgs:
			if _, ok := m.(proto.QuiesceAck); ok {
				goto done
			}
		case <-deadline:
			t.Fatal("coordinator wedged: no quiesce ack")
		}
	}
done:
	owners := map[partition.NodeID]bool{"m1": true, "m2": true}
	for id := 0; id < r.pmap.N(); id++ {
		o, err := r.pmap.Owner(partition.ID(id))
		if err != nil {
			t.Fatal(err)
		}
		if !owners[o] {
			t.Fatalf("partition %d owned by unknown node %q", id, o)
		}
	}
}

// TestQuiesceDuringForcedSpill verifies the quiesce fence also waits for
// an in-flight forced spill.
func TestQuiesceDuringForcedSpill(t *testing.T) {
	strategy := core.NewActiveDisk(core.ActiveDiskConfig{
		Relocation:     core.RelocationConfig{Threshold: 0.5, MinGap: 0},
		Lambda:         2,
		ForcedFraction: 0.5,
	})
	r := newRig(t, strategy)
	r.report(t, "m1", 1000, 1000)
	r.report(t, "m2", 900, 1)
	r.tick(t)
	fs := expect[proto.ForceSpill](t, r.m2)
	if fs.Amount <= 0 {
		t.Fatalf("ForceSpill = %+v", fs)
	}
	r.gen.ep.Send("gc", proto.Quiesce{})
	expectNothing(t, r.gen) // still waiting for SpillDone
	r.m2.ep.Send("gc", proto.SpillDone{Node: "m2", Bytes: fs.Amount})
	expect[proto.QuiesceAck](t, r.gen)
}
